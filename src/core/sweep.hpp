// SweepRunner — the parallel sweep engine. Figure builders and the bench
// binaries fan sweep points (scheme × K × α × speed grade) out across a
// pool of std::threads. Work distribution is dynamic (threads claim the
// next unclaimed index from a shared atomic counter, so long points do not
// stall short ones), but results are stored by index, which makes the
// output ordering — and therefore every rendered table — bit-identical to
// a serial run regardless of the thread count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "obs/timer.hpp"

namespace vr::core {

/// How the usable worker count was determined, for reporting: benchmark
/// JSON records the source next to the number so a reader can tell a real
/// single-core host from a container where hardware_concurrency() lies.
struct ConcurrencyProbe {
  std::size_t threads = 1;
  /// "env:VR_THREADS", "hardware_concurrency",
  /// "sysconf:_SC_NPROCESSORS_ONLN" or "fallback".
  const char* source = "fallback";
};

/// Upper bound on a VR_THREADS override. A pool this size already
/// oversubscribes any host the sweeps target by orders of magnitude;
/// values above it are treated as typos (a stray digit, a pasted byte
/// count) rather than intent, exactly like "0" or "8x".
inline constexpr std::size_t kMaxProbeThreads = 4096;

/// Probes the usable concurrency: VR_THREADS when set to a positive
/// integer, else std::thread::hardware_concurrency(), cross-checked
/// against the online-CPU count when it reports 0 or 1 (both values it
/// can legally return even on multi-core hosts).
[[nodiscard]] ConcurrencyProbe probe_concurrency();

/// Worker count used when a sweep does not pin one explicitly:
/// probe_concurrency().threads.
[[nodiscard]] std::size_t default_sweep_threads();

class SweepRunner {
 public:
  /// `threads` = 0 picks default_sweep_threads().
  explicit SweepRunner(std::size_t threads = 0)
      : threads_(threads == 0 ? default_sweep_threads() : threads) {}

  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_; }

  /// Evaluates fn(0) .. fn(count-1) across the pool and returns the
  /// results in index order. fn must be invocable concurrently from
  /// multiple threads; the first exception thrown is rethrown here after
  /// all workers have stopped.
  template <typename Fn>
  [[nodiscard]] auto map(std::size_t count, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>, "use for_each for void functions");
    std::vector<std::optional<R>> slots(count);
    run_indexed(count, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(count);
    for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Runs fn(0) .. fn(count-1) across the pool (no results collected).
  template <typename Fn>
  void for_each(std::size_t count, Fn&& fn) const {
    run_indexed(count, fn);
  }

 private:
  /// Metrics of the sweep engine, registered once per process in the
  /// global registry:
  ///   sweep.tasks            tasks completed
  ///   sweep.task_run_ns      per-task execution time
  ///   sweep.task_wait_ns     queue wait (sweep start -> task claimed)
  ///   sweep.workers          pool width of the most recent sweep
  ///   sweep.workers_active   workers currently inside a task
  ///   sweep.worker_utilization  busy fraction of each worker per sweep
  struct Metrics {
    obs::Counter& tasks;
    obs::Histogram& task_run_ns;
    obs::Histogram& task_wait_ns;
    obs::Gauge& workers;
    obs::Gauge& workers_active;
    obs::Histogram& worker_utilization;

    static const Metrics& get() {
      static Metrics metrics = [] {
        obs::Registry& reg = obs::Registry::global();
        return Metrics{reg.counter("sweep.tasks"),
                       reg.histogram("sweep.task_run_ns"),
                       reg.histogram("sweep.task_wait_ns"),
                       reg.gauge("sweep.workers"),
                       reg.gauge("sweep.workers_active"),
                       reg.histogram("sweep.worker_utilization")};
      }();
      return metrics;
    }
  };

  template <typename Fn>
  void run_indexed(std::size_t count, Fn&& fn) const {
    using Clock = std::chrono::steady_clock;
    const std::size_t workers = std::min(threads_, count);
    if (count == 0) return;
    const Metrics& metrics = Metrics::get();
    metrics.workers.set(static_cast<std::int64_t>(std::max<std::size_t>(
        workers, 1)));
    const Clock::time_point sweep_start = Clock::now();
    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr error;
    // One body for the serial and the pooled path, so both feed the same
    // metrics: claim a task, record its queue wait, time its run.
    const auto worker = [&] {
      const Clock::time_point worker_start = Clock::now();
      double busy_ns = 0.0;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        metrics.task_wait_ns.observe_duration(obs::since(sweep_start));
        const obs::TraceSpan span(metrics.task_run_ns,
                                  metrics.workers_active);
        const Clock::time_point task_start = Clock::now();
        try {
          fn(i);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(error_mu);
            if (!error) error = std::current_exception();
          }
          next.store(count, std::memory_order_relaxed);  // drain the queue
          break;
        }
        busy_ns += obs::since(task_start).value();
        metrics.tasks.add(1);
      }
      const double wall_ns = obs::since(worker_start).value();
      if (wall_ns > 0.0) {
        metrics.worker_utilization.observe(busy_ns / wall_ns);
      }
    };
    if (workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
      for (std::thread& thread : pool) thread.join();
    }
    if (error) std::rethrow_exception(error);
  }

  std::size_t threads_;
};

}  // namespace vr::core
