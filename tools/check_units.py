#!/usr/bin/env python3
"""Back-compat shim: the unit lint moved into tools/vrlint as the `units`
check (same three rules, same `units-ok` escape — see
tools/vrlint/checks/units.py for the rules and rationale). This entry
point keeps existing invocations (docs, muscle memory, CI configs)
working by running exactly that one check.

Run:  tools/check_units.py [--root DIR]
Exit: 0 clean, 1 violations found, 2 usage error.
"""

import os
import runpy
import sys

if __name__ == "__main__":
    sys.argv = [sys.argv[0], "--checks", "units"] + sys.argv[1:]
    runpy.run_path(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "vrlint"),
        run_name="__main__")
