// perf_lookup — the line-rate software lookup bench. Measures, on one
// BGP-shaped table:
//   1. batched Mlookups/s of the uni-bit flat trie (baseline) and of the
//      stride-2/4/8 flat multibit images, single-threaded;
//   2. multi-threaded scaling of the fastest image (aggregate and
//      per-thread Mlookups/s across the probed concurrency);
//   3. concurrent route updates through the snapshot publisher: publish
//      latency percentiles under BGP-churn batches, plus the staleness a
//      concurrent reader actually observes.
// Emits a table on stdout and machine-readable JSON (default
// BENCH_lookup.json).
//
// Flags: --threads N (reader pool; default: probed concurrency),
// --output FILE, --quick (smaller table and fewer keys for CI smoke use),
// --metrics[=path].
#include <atomic>
#include <fstream>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "core/sweep.hpp"
#include "lookup_bench.hpp"
#include "netbase/table_gen.hpp"
#include "trie/flat_multibit_trie.hpp"
#include "trie/snapshot_publisher.hpp"
#include "trie/unibit_trie.hpp"

namespace {

/// Reader-observed staleness while churn batches publish concurrently:
/// a reader loops acquire -> lookup -> staleness_of while the writer (this
/// thread) applies `batches` batches, then reports the maximum staleness
/// the reader saw and the last version published.
struct StalenessResult {
  std::uint64_t max_staleness = 0;
  std::uint64_t snapshots_read = 0;
  std::uint64_t sink = 0;
};

StalenessResult concurrent_staleness(vr::trie::SnapshotPublisher& publisher,
                                     const vr::net::RoutingTable& base,
                                     const std::vector<vr::net::Ipv4>& addrs,
                                     std::size_t batches,
                                     std::size_t updates_per_batch) {
  using namespace vr;
  StalenessResult out;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> max_staleness{0};
  std::atomic<std::uint64_t> snapshots_read{0};
  std::atomic<std::uint64_t> sink{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const trie::SnapshotPublisher::Snapshot snap = publisher.acquire();
      sink.fetch_add(bench::fold_hops(snap.image->lookup_batch(addrs)),
                     std::memory_order_relaxed);
      const std::uint64_t staleness = publisher.staleness_of(snap);
      std::uint64_t seen = max_staleness.load(std::memory_order_relaxed);
      while (staleness > seen &&
             !max_staleness.compare_exchange_weak(
                 seen, staleness, std::memory_order_relaxed)) {
      }
      snapshots_read.fetch_add(1, std::memory_order_relaxed);
    }
  });
  (void)bench::publisher_churn(publisher, base, batches, updates_per_batch,
                               /*seed=*/9);
  stop.store(true, std::memory_order_release);
  reader.join();
  out.max_staleness = max_staleness.load();
  out.snapshots_read = snapshots_read.load();
  out.sink = sink.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vr;
  bench::handle_metrics_flag(argc, argv);
  std::string output = "BENCH_lookup.json";
  bool quick = false;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(
          std::max(1L, std::strtol(argv[++i], nullptr, 10)));
    } else if (arg == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  const core::ConcurrencyProbe probe = core::probe_concurrency();
  const std::size_t pool = threads == 0 ? probe.threads : threads;

  net::TableProfile profile;
  if (quick) profile.prefix_count = 600;
  const net::RoutingTable table =
      net::SyntheticTableGenerator(profile).generate(/*seed=*/1);
  const std::size_t key_count = quick ? (1u << 16) : (1u << 20);
  const unsigned reps = quick ? 2 : 5;
  const std::vector<net::Ipv4> addrs = bench::random_addresses(key_count, 42);
  std::uint64_t sink = 0;

  const trie::UnibitTrie unibit = trie::UnibitTrie(table).leaf_pushed();
  const double unibit_mlps = bench::batch_mlps(
      addrs, [&] { return unibit.lookup_batch(addrs); }, reps, &sink);

  TextTable table_out("perf_lookup - batched lookup throughput" +
                      std::string(quick ? " (quick profile)" : ""));
  table_out.set_header(
      {"structure", "Mlookups/s", "speedup vs unibit", "memory Kbit"});
  table_out.add_row({"unibit flat (leaf-pushed)",
                     TextTable::num(unibit_mlps, 2), "1.000",
                     TextTable::num(static_cast<double>(
                                        unibit.node_count() * (18 + 8) * 2) /
                                        1e3,
                                    1)});

  double best_mlps = 0.0;
  unsigned best_stride = 2;
  double stride8_mlps = 0.0;
  for (const unsigned stride : {2u, 4u, 8u}) {
    const trie::FlatMultibitTrie flat(table, stride);
    const double mlps = bench::batch_mlps(
        addrs, [&] { return flat.lookup_batch(addrs); }, reps, &sink);
    if (stride == 8) stride8_mlps = mlps;
    if (mlps > best_mlps) {
      best_mlps = mlps;
      best_stride = stride;
    }
    table_out.add_row(
        {"multibit flat, stride " + std::to_string(stride),
         TextTable::num(mlps, 2),
         TextTable::num(unibit_mlps <= 0.0 ? 0.0 : mlps / unibit_mlps, 3),
         TextTable::num(static_cast<double>(flat.memory_bits()) / 1e3, 1)});
  }
  vr::bench::emit(table_out);

  // Thread scaling of the fastest image.
  const auto best_image = std::make_shared<const trie::FlatMultibitTrie>(
      table, best_stride);
  const bench::ThreadedMlps scaling = bench::threaded_mlps(
      addrs, [&] { return best_image->lookup_batch(addrs); }, pool, reps,
      &sink);
  std::cout << "thread scaling (stride " << best_stride << ", " << pool
            << " threads, source " << probe.source
            << "): " << TextTable::num(scaling.total_mlps, 2)
            << " Mlookups/s aggregate, "
            << TextTable::num(scaling.per_thread_mlps, 2) << " per thread\n";

  // Concurrent updates: publish latency, then reader-visible staleness.
  const std::size_t batches = quick ? 16 : 64;
  const std::size_t updates_per_batch = 64;
  trie::SnapshotPublisher publisher(table, best_stride);
  const bench::ChurnResult churn = bench::publisher_churn(
      publisher, table, batches, updates_per_batch, /*seed=*/7);
  const StalenessResult staleness = concurrent_staleness(
      publisher, table, addrs, batches, updates_per_batch);
  std::cout << "snapshot publisher (stride " << best_stride << ", "
            << batches << " x " << updates_per_batch
            << " updates): p50 " << TextTable::num(churn.publish_p50_us, 1)
            << " us, p99 " << TextTable::num(churn.publish_p99_us, 1)
            << " us per publish (" << TextTable::num(churn.apply_share * 100,
                                                     1)
            << "% control-plane apply)\n"
            << "concurrent reader: " << staleness.snapshots_read
            << " snapshots read, max staleness " << staleness.max_staleness
            << " publishes behind\n";
  if (sink + staleness.sink == 0xdeadbeef) std::cerr << "";  // defeat DCE

  std::ofstream json(output);
  json << "{\n"
       << "  \"benchmark\": \"perf_lookup\",\n"
       << "  \"profile\": \"" << (quick ? "quick" : "paper") << "\",\n"
       << "  \"prefix_count\": " << profile.prefix_count << ",\n"
       << "  \"key_count\": " << key_count << ",\n"
       << "  \"threads\": " << pool << ",\n"
       << "  \"hardware_concurrency\": " << probe.threads << ",\n"
       << "  \"hardware_concurrency_source\": \"" << probe.source << "\",\n"
       << "  \"lookup_mlps_unibit\": " << TextTable::num(unibit_mlps, 3)
       << ",\n"
       << "  \"lookup_mlps_multibit\": " << TextTable::num(best_mlps, 3)
       << ",\n"
       << "  \"lookup_mlps_multibit_stride8\": "
       << TextTable::num(stride8_mlps, 3) << ",\n"
       << "  \"best_stride\": " << best_stride << ",\n"
       << "  \"lookup_mlps_total\": " << TextTable::num(scaling.total_mlps, 3)
       << ",\n"
       << "  \"lookup_mlps_per_thread\": "
       << TextTable::num(scaling.per_thread_mlps, 3) << ",\n"
       << "  \"update_batches\": " << batches << ",\n"
       << "  \"updates_per_batch\": " << updates_per_batch << ",\n"
       << "  \"update_publish_p50_us\": "
       << TextTable::num(churn.publish_p50_us, 3) << ",\n"
       << "  \"update_publish_p99_us\": "
       << TextTable::num(churn.publish_p99_us, 3) << ",\n"
       << "  \"reader_snapshots\": " << staleness.snapshots_read << ",\n"
       << "  \"reader_max_staleness\": " << staleness.max_staleness << ",\n"
       << "  \"metrics\": "
       << obs::MetricsSink(obs::Registry::global()).json(2) << "\n"
       << "}\n";
  if (!json) {
    std::cerr << "error: could not write " << output << '\n';
    return 1;
  }
  std::cout << "wrote " << output << '\n';
  return 0;
}
