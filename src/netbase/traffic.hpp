// Packet-trace generation with per-virtual-network utilization and duty
// cycle — the workload model of the paper's Assumptions 1 and 3 plus the
// Sec. IV clock-gating discussion (idle periods consume no dynamic power).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netbase/routing_table.hpp"

namespace vr::net {

/// Virtual-network identifier (VNID). The paper indexes leaf vectors by
/// VNID in the merged scheme.
using VnId = std::uint16_t;

/// A lookup request: destination address tagged with its virtual network.
struct Packet {
  Ipv4 addr;
  VnId vnid = 0;

  friend bool operator==(const Packet&, const Packet&) = default;
};

/// A packet bound to the cycle at which it arrives at the lookup engine.
struct TimedPacket {
  std::uint64_t cycle = 0;
  Packet packet;

  friend bool operator==(const TimedPacket&, const TimedPacket&) = default;
};

/// Configuration of the arrival process.
struct TrafficConfig {
  /// Number of clock cycles to generate for.
  std::uint64_t cycles = 100000;

  /// Probability that a new packet arrives in an "on" cycle (aggregate
  /// offered load, 1.0 = one packet per cycle, the pipeline's capacity).
  double load = 1.0;

  /// Duty cycle: arrivals only occur during the first
  /// `duty_on_fraction * duty_period` cycles of every period. 1.0 = always
  /// on. Models the low-duty edge-network behaviour of Sec. I.
  double duty_on_fraction = 1.0;
  std::uint64_t duty_period = 1000;

  /// Relative traffic share per virtual network (the paper's µ_i, up to
  /// normalization). Empty means uniform (Assumption 1).
  std::vector<double> vn_weights;

  /// Per-VN duty-phase offsets as fractions of duty_period. When set
  /// (size = VN count), each VN is only "on" during
  /// [offset, offset + duty_on_fraction) of the period (wrapping), and a
  /// cycle's packet is drawn among the currently-on VNs — the staggered
  /// edge-network peaks that make time-sharing (the merged scheme) work.
  /// Empty = one global duty window (the default behaviour).
  std::vector<double> vn_phase_offsets;
};

/// Generates traces whose destination addresses are sampled from the routes
/// of the owning virtual network (so every lookup matches), with host bits
/// randomized.
class TrafficGenerator {
 public:
  /// `tables[v]` is the routing table of virtual network v. At least one
  /// table, none empty.
  TrafficGenerator(TrafficConfig config,
                   std::vector<const RoutingTable*> tables);

  /// Produces a deterministic trace for the given seed.
  [[nodiscard]] std::vector<TimedPacket> generate(std::uint64_t seed) const;

  /// Draws one in-table destination address for virtual network `vn`.
  [[nodiscard]] Packet sample_packet(Rng& rng, VnId vn) const;

  [[nodiscard]] const TrafficConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t vn_count() const noexcept {
    return tables_.size();
  }

  /// Measured share of packets per VN in a trace (for tests: converges to
  /// the normalized vn_weights).
  static std::vector<double> measured_shares(
      const std::vector<TimedPacket>& trace, std::size_t vn_count);

 private:
  TrafficConfig config_;
  std::vector<const RoutingTable*> tables_;
  std::vector<double> weights_;  // normalized per-VN probabilities
};

}  // namespace vr::net
