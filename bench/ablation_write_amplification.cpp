// Ablation: leaf-pushing write amplification — the paper deploys
// leaf-pushed tries (Sec. V-D) but assumes a low update rate (Sec. V-B);
// its reference [6] works on incremental updates precisely because leaf
// pushing amplifies updates: a single announce can flip the inherited next
// hop of a whole subtree of pushed leaves. This bench replays BGP-like
// updates and compares the words written in the raw trie (incremental,
// O(prefix length)) against the words a leaf-pushed deployment must
// rewrite (structural diff).
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "netbase/update_gen.hpp"
#include "trie/trie_diff.hpp"
#include "trie/updatable_trie.hpp"

int main() {
  using namespace vr;
  net::TableProfile profile;
  profile.prefix_count = 1500;
  const net::SyntheticTableGenerator gen(profile);
  const net::RoutingTable base = gen.generate(1);

  net::UpdateStreamConfig stream_config;
  stream_config.update_count = 60;
  stream_config.profile = profile;
  const net::UpdateStreamGenerator stream_gen(stream_config);
  const auto stream = stream_gen.generate(base, 3);

  RunningStats raw_words;
  RunningStats pushed_words;
  RunningStats amplification;
  net::RoutingTable current = base;
  trie::UnibitTrie pushed_before = trie::UnibitTrie(current).leaf_pushed();
  trie::UpdatableTrie incremental(current);

  for (const net::RouteUpdate& update : stream) {
    const trie::UpdateCost cost = incremental.apply(update);
    if (update.kind == net::RouteUpdate::Kind::kAnnounce) {
      current.add(update.route);
    } else {
      current.remove(update.route.prefix);
    }
    const trie::UnibitTrie pushed_after =
        trie::UnibitTrie(current).leaf_pushed();
    const trie::TrieDiff diff = diff_tries(pushed_before, pushed_after);
    raw_words.add(static_cast<double>(cost.words_written));
    pushed_words.add(static_cast<double>(diff.words_written()));
    if (cost.words_written > 0) {
      amplification.add(static_cast<double>(diff.words_written()) /
                        static_cast<double>(cost.words_written));
    }
    pushed_before = pushed_after;
  }

  TextTable out(
      "Write amplification of leaf pushing (60 BGP-like updates, "
      "1500-prefix table)");
  out.set_header({"deployment", "mean words/update", "max words/update"});
  out.add_row({"raw trie (incremental)", TextTable::num(raw_words.mean(), 1),
               TextTable::num(raw_words.max(), 0)});
  out.add_row({"leaf-pushed trie (rewrite)",
               TextTable::num(pushed_words.mean(), 1),
               TextTable::num(pushed_words.max(), 0)});
  out.add_row({"amplification x", TextTable::num(amplification.mean(), 1),
               TextTable::num(amplification.max(), 0)});
  vr::bench::emit(out);
  std::cout << "Leaf pushing buys lookup-side simplicity (NHI only at\n"
               "leaves) at an update-side write amplification that is\n"
               "modest on average but explodes on short-prefix churn (a\n"
               "re-announced /16 rewrites every pushed leaf it covers) --\n"
               "the gap reference [6] (incremental updates for virtualized\n"
               "routers) targets.\n";
  return 0;
}
