file(REMOVE_RECURSE
  "libvr_tcam.a"
)
