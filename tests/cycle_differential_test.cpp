// Oracle-differential test (`ctest -L cycle`): with contention configured
// away — one flit per packet, a VC pool and switch wide enough that
// nothing ever stalls long, and egress queues deep enough that nothing
// tail-drops — the cycle-level model must converge to the per-packet
// FullRouter on identical FrameGenerator streams. Lookup verdicts are
// value-deterministic (same trie + same destination -> same next hop,
// whenever the lookup happens), so forwarded / no-route / TTL-expired /
// parser-drop totals and per-VN transmitted bytes must match EXACTLY;
// any difference is a conservation bug in the cycle machinery, not a
// modeling choice.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dataplane/cycle/cycle_router.hpp"
#include "dataplane/full_router.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/traffic.hpp"
#include "pipeline/router.hpp"
#include "trie/unibit_trie.hpp"
#include "virt/merged_trie.hpp"

namespace vr::dataplane::cycle {
namespace {

constexpr std::size_t kStages = 28;

constexpr VcPolicy kAllPolicies[] = {VcPolicy::kNvStatic, VcPolicy::kVsStatic,
                                     VcPolicy::kVmStatic, VcPolicy::kDynamic};

struct LookupFixture {
  std::vector<net::RoutingTable> tables;
  std::vector<const net::RoutingTable*> table_ptrs;
  std::vector<trie::UnibitTrie> tries;
  std::vector<const trie::UnibitTrie*> trie_ptrs;
  std::optional<virt::MergedTrie> merged;
  std::unique_ptr<pipeline::VirtualRouter> router;
};

std::unique_ptr<LookupFixture> make_lookup(std::size_t k, bool separate,
                                           std::uint64_t table_seed) {
  auto f = std::make_unique<LookupFixture>();
  net::TableProfile profile;
  profile.prefix_count = 150;
  const net::SyntheticTableGenerator table_gen(profile);
  for (std::uint64_t v = 0; v < k; ++v) {
    f->tables.push_back(table_gen.generate(table_seed + v));
  }
  for (const auto& t : f->tables) f->table_ptrs.push_back(&t);
  for (const auto& t : f->tables) {
    f->tries.emplace_back(trie::UnibitTrie(t).leaf_pushed());
  }
  for (const auto& t : f->tries) f->trie_ptrs.push_back(&t);
  if (separate) {
    std::vector<pipeline::TrieView> views;
    for (const auto& t : f->tries) views.emplace_back(t);
    f->router = std::make_unique<pipeline::SeparateRouter>(views, kStages);
  } else {
    f->merged.emplace(std::span<const trie::UnibitTrie* const>(f->trie_ptrs));
    f->router = std::make_unique<pipeline::MergedRouter>(*f->merged, kStages);
  }
  return f;
}

SchedulerConfig roomy_scheduler(std::size_t k) {
  SchedulerConfig config;
  config.vn_count = k;
  config.port_count = 16;
  // Deep enough that neither model ever tail-drops: with no egress loss
  // the editor verdicts are the only place packets can diverge.
  config.queue_capacity = 100000;
  return config;
}

TEST(CycleDifferential, MatchesFullRouterExactlyAtInfiniteResources) {
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    for (const VcPolicy policy : kAllPolicies) {
      SCOPED_TRACE(::testing::Message()
                   << "K=" << k << " policy=" << to_string(policy));
      const bool separate = separate_engines(policy);
      const auto oracle_lookup = make_lookup(k, separate, 400);
      const auto cycle_lookup = make_lookup(k, separate, 400);

      FrameGenConfig frame_config;
      frame_config.traffic =
          net::make_shaped_config(net::TraceShape::kBursty, 3000, 0.5, k);
      frame_config.corrupt_fraction = 0.05;
      frame_config.expiring_ttl_fraction = 0.05;
      const FrameGenerator frame_gen(frame_config, oracle_lookup->table_ptrs);
      const auto frames =
          frame_gen.generate(FrameGenerator::derive_seed(1234, k));

      FullRouterConfig oracle_config;
      oracle_config.scheduler = roomy_scheduler(k);
      const FullRouterResult oracle =
          run_full_router(*oracle_lookup->router, frames, oracle_config);

      CycleConfig config;
      config.vc.policy = policy;
      config.vc.vc_count = 16 * k;  // effectively unbounded VC pool
      config.vc.vn_count = k;
      config.vc.dynamic_floor = 1;
      config.vc_capacity_flits = 4;
      // Max IMIX packet is 1500 bytes: one flit per packet, like the
      // per-packet oracle.
      config.flit_bytes = 2000;
      config.switch_flits_per_cycle = 64;
      config.scheduler = roomy_scheduler(k);
      const CycleResult cycle =
          run_cycle_router(*cycle_lookup->router, frames, config);

      // Same frames, same parser logic: drop accounting is identical.
      EXPECT_EQ(cycle.parser.accepted, oracle.parser.accepted);
      EXPECT_EQ(cycle.parser.malformed, oracle.parser.malformed);
      EXPECT_EQ(cycle.parser.bad_checksum, oracle.parser.bad_checksum);
      EXPECT_EQ(cycle.parser.ttl_expired, oracle.parser.ttl_expired);
      // Lookup verdicts are value-deterministic, so the editor totals
      // must match exactly however differently the two models schedule.
      EXPECT_EQ(cycle.editor.forwarded, oracle.editor.forwarded);
      EXPECT_EQ(cycle.editor.no_route, oracle.editor.no_route);
      EXPECT_EQ(cycle.editor.ttl_expired, oracle.editor.ttl_expired);
      // No tail drops anywhere: every forwarded packet is transmitted.
      EXPECT_EQ(cycle.scheduler.tail_drops, 0u);
      EXPECT_EQ(oracle.scheduler.tail_drops, 0u);
      EXPECT_EQ(cycle.scheduler.enqueued, oracle.scheduler.enqueued);
      EXPECT_EQ(cycle.scheduler.transmitted, oracle.scheduler.transmitted);
      EXPECT_EQ(cycle.scheduler.bytes_per_vn, oracle.scheduler.bytes_per_vn);
      // One flit per packet: flit flow mirrors the packet counts.
      EXPECT_EQ(cycle.cycle.flits_in, cycle.parser.accepted);
      EXPECT_EQ(cycle.cycle.flits_out, cycle.editor.forwarded);
      EXPECT_EQ(cycle.cycle.flits_in,
                cycle.cycle.flits_out + cycle.cycle.flits_dropped);
    }
  }
}

}  // namespace
}  // namespace vr::dataplane::cycle
