// MUST NOT COMPILE: only a frequency has a clock period; asking for the
// period of a power is dimensional nonsense.
#include "common/units.hpp"

int main() {
  const auto t = vr::units::period(vr::units::Watts{4.5});
  return static_cast<int>(t.value());
}
