// Shared plumbing for the figure/table bench binaries: every binary prints
// a human-readable table followed by machine-readable CSV so EXPERIMENTS.md
// can be regenerated from a single run.
//
// Sweep-heavy binaries accept:
//   --threads N   worker threads for the K sweeps (default: VR_THREADS env
//                 var, else the hardware concurrency; output is
//                 bit-identical for every thread count)
//   --serial      shorthand for --threads 1 --no-cache (the seed behaviour)
//   --no-cache    rebuild every workload instead of using WorkloadCache
//
// Every binary accepts:
//   --metrics[=path.json]   at exit, dump the process-wide obs registry as
//                           JSON to `path` (default metrics.json). Written
//                           to a file, never stdout, so the golden
//                           byte-for-byte stdout comparisons are unaffected.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/figures.hpp"
#include "obs/registry.hpp"
#include "obs/sink.hpp"

namespace vr::bench {

/// Consumes a `--metrics[=path]` argument if present: registers an atexit
/// hook that serializes obs::Registry::global() to the JSON file. Safe to
/// call from any main(); flags it does not own are left for the caller.
inline void handle_metrics_flag(int argc, char** argv) {
  static std::string path;  // read by the atexit hook after main returns
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics") {
      path = "metrics.json";
    } else if (arg.rfind("--metrics=", 0) == 0) {
      path = arg.substr(std::string("--metrics=").size());
    } else {
      continue;
    }
    // Touch the registry before registering the hook: statics are torn
    // down in reverse construction order, so this guarantees the registry
    // is still alive when the atexit callback runs after main() returns.
    (void)obs::Registry::global();
    std::atexit([] {
      const obs::MetricsSink sink(obs::Registry::global());
      if (!sink.write_json_file(path)) {
        std::cerr << "vrpower: failed to write metrics to " << path << '\n';
      }
    });
    return;
  }
}

/// Paper-sized sweep options (3 725-prefix tables, K = 1..15, N = 28).
inline core::FigureOptions paper_options() { return core::FigureOptions{}; }

/// Paper-sized options with the common command-line flags applied.
inline core::FigureOptions paper_options(int argc, char** argv) {
  core::FigureOptions opt;
  handle_metrics_flag(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      opt.threads = static_cast<std::size_t>(
          std::max(1L, std::strtol(argv[++i], nullptr, 10)));
    } else if (arg == "--serial") {
      opt.threads = 1;
      opt.use_cache = false;
    } else if (arg == "--no-cache") {
      opt.use_cache = false;
    }
  }
  return opt;
}

inline void emit(const SeriesTable& table) {
  table.render(std::cout);
  std::cout << "\n--- CSV ---\n";
  table.render_csv(std::cout);
  std::cout << '\n';
}

inline void emit(const TextTable& table) {
  table.render(std::cout);
  std::cout << "\n--- CSV ---\n";
  table.render_csv(std::cout);
  std::cout << '\n';
}

}  // namespace vr::bench
