#include "virt/overlap_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vr::virt {

double merged_node_count(std::size_t vn_count, double nodes_per_trie,
                         double alpha) {
  VR_REQUIRE(vn_count >= 1, "vn_count must be >= 1");
  VR_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  VR_REQUIRE(nodes_per_trie >= 0.0, "node count must be non-negative");
  const auto k = static_cast<double>(vn_count);
  return k * nodes_per_trie / (1.0 + (k - 1.0) * alpha);
}

double alpha_from_counts(std::size_t vn_count, double sum_input_nodes,
                         double merged_nodes) {
  VR_REQUIRE(vn_count >= 1, "vn_count must be >= 1");
  if (vn_count == 1) return 1.0;
  VR_REQUIRE(merged_nodes > 0.0, "merged node count must be positive");
  const double alpha = (sum_input_nodes / merged_nodes - 1.0) /
                       static_cast<double>(vn_count - 1);
  return std::clamp(alpha, 0.0, 1.0);
}

trie::StageMemory predict_merged_stage_memory(
    const trie::TrieStats& representative, const trie::StageMapping& mapping,
    const trie::NodeEncoding& encoding, std::size_t vn_count, double alpha,
    MergedMemoryRule rule) {
  VR_REQUIRE(vn_count >= 1, "vn_count must be >= 1");
  const auto occ = trie::occupancy(representative, mapping);
  trie::StageMemory memory;
  const std::size_t stages = mapping.stage_count();
  memory.pointer_bits.assign(stages, 0);
  memory.nhi_bits.assign(stages, 0);

  switch (rule) {
    case MergedMemoryRule::kOverlapConsistent: {
      // Scale each stage's node population by the merged expansion factor,
      // then apply word widths (leaves widen to K NHI entries).
      const double expansion =
          merged_node_count(vn_count, 1.0, alpha);  // K/(1+(K−1)α)
      for (std::size_t s = 0; s < stages; ++s) {
        const double internal =
            std::round(static_cast<double>(occ.internal_nodes[s]) * expansion);
        const double leaves =
            std::round(static_cast<double>(occ.leaf_nodes[s]) * expansion);
        memory.pointer_bits[s] = static_cast<std::uint64_t>(
            internal * encoding.internal_word_bits());
        memory.nhi_bits[s] = static_cast<std::uint64_t>(
            leaves * encoding.leaf_word_bits(vn_count));
      }
      break;
    }
    case MergedMemoryRule::kPaperLiteral: {
      // Eq. 5 verbatim: per-stage memory = α · Σ_k M_{k,stage}, with the
      // single-VN word widths (the printed equation has no vector leaves).
      for (std::size_t s = 0; s < stages; ++s) {
        const double sum_ptr = static_cast<double>(occ.internal_nodes[s]) *
                               encoding.internal_word_bits() *
                               static_cast<double>(vn_count);
        const double sum_nhi = static_cast<double>(occ.leaf_nodes[s]) *
                               encoding.leaf_word_bits(1) *
                               static_cast<double>(vn_count);
        memory.pointer_bits[s] =
            static_cast<std::uint64_t>(std::round(alpha * sum_ptr));
        memory.nhi_bits[s] =
            static_cast<std::uint64_t>(std::round(alpha * sum_nhi));
      }
      break;
    }
  }
  return memory;
}

trie::StageMemory predict_separate_stage_memory(
    const trie::TrieStats& representative, const trie::StageMapping& mapping,
    const trie::NodeEncoding& encoding) {
  const auto occ = trie::occupancy(representative, mapping);
  return trie::stage_memory(occ, encoding, 1);
}

}  // namespace vr::virt
