"""determinism — experiments must be bit-reproducible.

Every stochastic component is seeded through ``vr::SplitMix64`` /
``vr::Rng`` (common/rng.hpp) and `derive_seed`-style expansion
(DESIGN.md §13) so goldens, bench JSON, and the placement controller's
competitive-ratio experiments stay byte-stable. Two rules over src/ and
bench/:

1. Banned nondeterminism sources: ``rand()``/``srand()``,
   ``std::random_device``, ``time(...)`` as an entropy source,
   ``system_clock::now`` (wall-clock time reaching model output;
   steady_clock for *measuring* durations is fine and untouched).
2. Unordered-container iteration: range-for over a name declared as
   ``std::unordered_map``/``set`` in the same file. Hash-order is
   platform- and libstdc++-version-dependent, so anything it feeds
   (output rows, accumulated floats, metric emission order) silently
   diverges across toolchains.

Escape: ``// det-ok: <reason>`` — e.g. a sort immediately downstream,
or output proven order-insensitive.
"""

from __future__ import annotations

import re
from typing import Iterable

import core

BANNED = [
    (re.compile(r"(?<!\w)(?:std\s*::\s*)?s?rand\s*\("),
     "rand()/srand() — use vr::Rng seeded via SplitMix64 (common/rng.hpp)"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic entropy — seeds must be "
     "explicit and derived via SplitMix64"),
    (re.compile(r"(?<!\w)(?:std\s*::\s*)?time\s*\(\s*(?:NULL\b|nullptr\b|0|&)"),
     "time() as an entropy/seed source breaks bit-reproducibility"),
    (re.compile(r"\bsystem_clock::now\b"),
     "wall-clock time in a model/output path — use steady_clock for "
     "durations, explicit seeds for entropy"),
]

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+"
    r"([A-Za-z_]\w*)\s*(?:;|=|\{|\()")


@core.register
class DeterminismCheck(core.Check):
    name = "determinism"
    description = ("no rand()/time()/random_device entropy; no "
                   "unordered-container iteration feeding outputs")

    def run(self, tree: core.SourceTree) -> Iterable[core.Finding]:
        for f in tree.in_dirs("src", "bench"):
            # Names declared as unordered containers anywhere in this
            # file (header members count for the companion .cpp too).
            names = set()
            for source in filter(None, (f, tree.companion(f))):
                for line in source.lines:
                    code = core.strip_comment(line)
                    names.update(
                        m.group(1) for m in UNORDERED_DECL.finditer(code))
            iter_re = None
            if names:
                iter_re = re.compile(
                    r"\bfor\s*\([^;)]*:\s*(?:[\w.\->]+[.\->])?("
                    + "|".join(re.escape(n) for n in sorted(names))
                    + r")\b[^;]*\)")
            for i, raw in enumerate(f.lines):
                if f.suppressed(i, "det-ok"):
                    continue
                code = core.strip_comment(raw)
                for pattern, why in BANNED:
                    if pattern.search(code):
                        yield core.Finding(
                            self.name, f.rel, i + 1,
                            f"nondeterministic source: {why} (or annotate "
                            f"'// det-ok: <reason>')")
                if iter_re:
                    m = iter_re.search(code)
                    if m:
                        yield core.Finding(
                            self.name, f.rel, i + 1,
                            f"iteration over unordered container "
                            f"'{m.group(1)}' — hash order is platform-"
                            f"dependent; iterate a sorted view or annotate "
                            f"'// det-ok: <reason>' if order cannot reach "
                            f"any output")
