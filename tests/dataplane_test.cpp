#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.hpp"
#include "dataplane/full_router.hpp"
#include "netbase/packet.hpp"
#include "obs/metrics.hpp"
#include "netbase/table_gen.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::dataplane {
namespace {

using net::Ipv4;
using net::Ipv4Header;
using net::RoutingTable;

// ----------------------------------------------------------------- packet --

TEST(Ipv4HeaderTest, SerializeParseRoundTrip) {
  Ipv4Header header;
  header.dscp = 0x28;
  header.total_length = 60;
  header.identification = 0xbeef;
  header.ttl = 17;
  header.protocol = 6;
  header.source = Ipv4(192, 0, 2, 1);
  header.destination = Ipv4(198, 51, 100, 7);
  header.checksum = header.compute_checksum();
  const auto bytes = header.serialize();
  const auto parsed = Ipv4Header::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dscp, header.dscp);
  EXPECT_EQ(parsed->total_length, header.total_length);
  EXPECT_EQ(parsed->identification, header.identification);
  EXPECT_EQ(parsed->ttl, header.ttl);
  EXPECT_EQ(parsed->protocol, header.protocol);
  EXPECT_EQ(parsed->source, header.source);
  EXPECT_EQ(parsed->destination, header.destination);
  EXPECT_TRUE(parsed->verify_checksum());
}

TEST(Ipv4HeaderTest, KnownChecksumVector) {
  // Classic worked example (en.wikipedia.org/wiki/IPv4_header_checksum):
  // 45 00 00 73 00 00 40 00 40 11 <sum> c0 a8 00 01 c0 a8 00 c7
  // has header checksum 0xb861.
  const std::uint8_t raw[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                              0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
                              0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(net::internet_checksum(raw), 0xb861);
}

TEST(Ipv4HeaderTest, ChecksumDetectsCorruption) {
  Ipv4Header header;
  header.source = Ipv4(10, 0, 0, 1);
  header.destination = Ipv4(10, 0, 0, 2);
  header.checksum = header.compute_checksum();
  EXPECT_TRUE(header.verify_checksum());
  header.ttl ^= 0x01;
  EXPECT_FALSE(header.verify_checksum());
}

TEST(Ipv4HeaderTest, ParseRejectsBadInput) {
  std::array<std::uint8_t, 20> bytes{};
  bytes[0] = 0x46;  // IHL 6: options unsupported
  EXPECT_FALSE(Ipv4Header::parse(bytes).has_value());
  bytes[0] = 0x45;
  EXPECT_FALSE(
      Ipv4Header::parse(std::span(bytes).first(19)).has_value());
  // total_length below the header size is invalid.
  bytes[2] = 0;
  bytes[3] = 10;
  EXPECT_FALSE(Ipv4Header::parse(bytes).has_value());
}

TEST(Ipv4HeaderTest, IncrementalTtlChecksumMatchesFullRecompute) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    Ipv4Header header;
    header.dscp = static_cast<std::uint8_t>(rng.next_below(64) << 2);
    header.total_length =
        static_cast<std::uint16_t>(20 + rng.next_below(1480));
    header.identification = static_cast<std::uint16_t>(rng.next_u64());
    header.ttl = static_cast<std::uint8_t>(rng.next_in(1, 255));
    header.protocol = static_cast<std::uint8_t>(rng.next_below(256));
    header.source = Ipv4(static_cast<std::uint32_t>(rng.next_u64()));
    header.destination = Ipv4(static_cast<std::uint32_t>(rng.next_u64()));
    header.checksum = header.compute_checksum();
    ASSERT_TRUE(header.decrement_ttl());
    EXPECT_EQ(header.checksum, header.compute_checksum())
        << "ttl now " << int{header.ttl};
  }
}

TEST(Ipv4HeaderTest, DecrementAtZeroRefuses) {
  Ipv4Header header;
  header.ttl = 0;
  EXPECT_FALSE(header.decrement_ttl());
  EXPECT_EQ(header.ttl, 0);
}

// ----------------------------------------------------------------- parser --

TEST(ParserTest, AcceptsValidFrames) {
  Parser parser;
  Ipv4Header header;
  header.ttl = 10;
  header.source = Ipv4(10, 0, 0, 1);
  header.destination = Ipv4(10, 0, 0, 2);
  header.checksum = header.compute_checksum();
  const auto parsed = parser.accept(2, header, 40);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->vnid, 2);
  EXPECT_EQ(parser.stats().accepted, 1u);
}

TEST(ParserTest, DropsBadChecksum) {
  Parser parser;
  Ipv4Header header;
  header.ttl = 10;
  header.checksum = static_cast<std::uint16_t>(
      header.compute_checksum() ^ 0x1);
  EXPECT_FALSE(parser.accept(0, header, 20).has_value());
  EXPECT_EQ(parser.stats().bad_checksum, 1u);
}

TEST(ParserTest, DropsExpiringTtl) {
  Parser parser;
  for (const std::uint8_t ttl : {std::uint8_t{0}, std::uint8_t{1}}) {
    Ipv4Header header;
    header.ttl = ttl;
    header.checksum = header.compute_checksum();
    EXPECT_FALSE(parser.accept(0, header, 20).has_value());
  }
  EXPECT_EQ(parser.stats().ttl_expired, 2u);
}

TEST(ParserTest, TruncatedBuffersAreMalformedAtEveryLength) {
  Parser parser;
  Ipv4Header header;
  header.ttl = 9;
  const auto bytes = header.serialize_with_checksum();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(parser.parse(0, std::span(bytes).first(len)).has_value());
  }
  EXPECT_EQ(parser.stats().malformed, bytes.size());
  EXPECT_EQ(parser.stats().accepted, 0u);
}

TEST(ParserTest, ParseFromBytes) {
  Parser parser;
  Ipv4Header header;
  header.ttl = 33;
  header.total_length = 60;
  const auto bytes = header.serialize_with_checksum();
  const auto parsed = parser.parse(1, bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload_bytes, 40);
  // Truncated buffer -> malformed.
  EXPECT_FALSE(parser.parse(1, std::span(bytes).first(8)).has_value());
  EXPECT_EQ(parser.stats().malformed, 1u);
}

// ----------------------------------------------------------------- editor --

TEST(EditorTest, ForwardsAndRewrites) {
  Editor editor;
  ParsedPacket packet;
  packet.vnid = 1;
  packet.header.ttl = 9;
  packet.header.checksum = packet.header.compute_checksum();
  const auto forwarded = editor.edit(packet, net::NextHop{5});
  ASSERT_TRUE(forwarded.has_value());
  EXPECT_EQ(forwarded->port, 5);
  EXPECT_EQ(forwarded->header.ttl, 8);
  EXPECT_TRUE(forwarded->header.verify_checksum());
  EXPECT_EQ(editor.stats().forwarded, 1u);
}

TEST(EditorTest, DropsNoRoute) {
  Editor editor;
  ParsedPacket packet;
  packet.header.ttl = 9;
  EXPECT_FALSE(editor.edit(packet, std::nullopt).has_value());
  EXPECT_EQ(editor.stats().no_route, 1u);
}

TEST(EditorTest, DropsOnTtlExpiry) {
  // The parser refuses TTL <= 1 on arrival, but the editor must still hold
  // the line for packets injected past it: TTL 0 cannot decrement, TTL 1
  // decrements to 0 — both expire at the editor, neither is forwarded.
  Editor editor;
  for (const std::uint8_t ttl : {std::uint8_t{0}, std::uint8_t{1}}) {
    ParsedPacket packet;
    packet.header.ttl = ttl;
    packet.header.checksum = packet.header.compute_checksum();
    EXPECT_FALSE(editor.edit(packet, net::NextHop{3}).has_value());
  }
  EXPECT_EQ(editor.stats().ttl_expired, 2u);
  EXPECT_EQ(editor.stats().forwarded, 0u);
}

// -------------------------------------------------------------- scheduler --

SchedulerConfig two_vn_config() {
  SchedulerConfig config;
  config.port_count = 1;
  config.vn_count = 2;
  config.bytes_per_cycle = 40.0;
  return config;
}

ForwardedPacket make_packet(net::VnId vn, std::uint16_t payload,
                            net::NextHop port = 0) {
  ForwardedPacket packet;
  packet.vnid = vn;
  packet.port = port;
  packet.payload_bytes = payload;
  return packet;
}

TEST(SchedulerTest, TransmitsWithinLinkRate) {
  DrrScheduler scheduler(two_vn_config());
  std::vector<EgressRecord> egress;
  for (int i = 0; i < 50; ++i) {
    scheduler.enqueue(make_packet(0, 20), 0);  // 40 B frames
  }
  for (std::uint64_t c = 0; c < 25; ++c) scheduler.tick(c, &egress);
  // 40 B/cycle link, 40 B packets: one per cycle (+1 from initial credit).
  EXPECT_LE(egress.size(), 27u);
  EXPECT_GE(egress.size(), 24u);
}

TEST(SchedulerTest, EqualWeightsShareTheLink) {
  DrrScheduler scheduler(two_vn_config());
  std::vector<EgressRecord> egress;
  for (std::uint64_t c = 0; c < 4000; ++c) {
    // Keep both VN queues backlogged.
    scheduler.enqueue(make_packet(0, 20), c);
    scheduler.enqueue(make_packet(1, 20), c);
    scheduler.tick(c, &egress);
  }
  const auto& stats = scheduler.stats();
  const double total = static_cast<double>(stats.bytes_per_vn[0] +
                                           stats.bytes_per_vn[1]);
  EXPECT_NEAR(static_cast<double>(stats.bytes_per_vn[0]) / total, 0.5,
              0.05);
}

TEST(SchedulerTest, WeightsSkewTheShare) {
  SchedulerConfig config = two_vn_config();
  config.vn_weights = {3.0, 1.0};
  config.queue_capacity = 256;
  DrrScheduler scheduler(config);
  std::vector<EgressRecord> egress;
  for (std::uint64_t c = 0; c < 6000; ++c) {
    scheduler.enqueue(make_packet(0, 20), c);
    scheduler.enqueue(make_packet(1, 20), c);
    scheduler.tick(c, &egress);
  }
  const auto& stats = scheduler.stats();
  const double total = static_cast<double>(stats.bytes_per_vn[0] +
                                           stats.bytes_per_vn[1]);
  EXPECT_NEAR(static_cast<double>(stats.bytes_per_vn[0]) / total, 0.75,
              0.06);
}

TEST(SchedulerTest, DrrIsByteFairAcrossPacketSizes) {
  // VN0 sends large packets, VN1 small ones; DRR equalizes BYTES, not
  // packet counts.
  SchedulerConfig config = two_vn_config();
  config.queue_capacity = 512;
  DrrScheduler scheduler(config);
  std::vector<EgressRecord> egress;
  for (std::uint64_t c = 0; c < 8000; ++c) {
    scheduler.enqueue(make_packet(0, 1480), c);
    scheduler.enqueue(make_packet(1, 20), c);
    scheduler.enqueue(make_packet(1, 20), c);
    scheduler.tick(c, &egress);
  }
  const auto& stats = scheduler.stats();
  const double ratio = static_cast<double>(stats.bytes_per_vn[0]) /
                       static_cast<double>(stats.bytes_per_vn[1]);
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(SchedulerTest, TailDropsWhenFull) {
  SchedulerConfig config = two_vn_config();
  config.queue_capacity = 4;
  DrrScheduler scheduler(config);
  for (int i = 0; i < 10; ++i) {
    scheduler.enqueue(make_packet(0, 20), 0);
  }
  EXPECT_EQ(scheduler.stats().tail_drops, 6u);
  EXPECT_EQ(scheduler.queue_depth(0, 0), 4u);
}

TEST(SchedulerTest, PacketsRouteToTheirPort) {
  SchedulerConfig config;
  config.port_count = 4;
  config.vn_count = 1;
  DrrScheduler scheduler(config);
  std::vector<EgressRecord> egress;
  scheduler.enqueue(make_packet(0, 20, 2), 0);
  scheduler.tick(0, &egress);
  ASSERT_EQ(egress.size(), 1u);
  EXPECT_EQ(egress[0].port, 2);
}

TEST(SchedulerTest, OutOfRangePortAborts) {
  // Regression: enqueue used to alias port % port_count, silently crediting
  // a wiring bug's traffic (and DRR share) to an unrelated port.
  SchedulerConfig config;
  config.port_count = 4;
  config.vn_count = 1;
  DrrScheduler scheduler(config);
  EXPECT_DEATH((void)scheduler.enqueue(make_packet(0, 20, 4), 0),
               "egress port out of range");
  EXPECT_DEATH((void)scheduler.enqueue(make_packet(0, 20, 200), 0),
               "egress port out of range");
}

TEST(SchedulerTest, RejectedCountsTailDrops) {
  SchedulerConfig config = two_vn_config();
  config.queue_capacity = 4;
  DrrScheduler scheduler(config);
  for (int i = 0; i < 10; ++i) {
    scheduler.enqueue(make_packet(0, 20), 0);
  }
  EXPECT_EQ(scheduler.stats().tail_drops, 6u);
  EXPECT_EQ(scheduler.stats().rejected, 6u);
}

TEST(SchedulerTest, SaturationResolvesBackpressurePerVn) {
  SchedulerConfig config = two_vn_config();
  config.queue_capacity = 4;
  DrrScheduler scheduler(config);
  // VN 0 floods a 4-deep queue (6 of 10 drop); VN 1 stays inside its own
  // queue — its backpressure counter must not pick up the neighbor's drops.
  for (int i = 0; i < 10; ++i) scheduler.enqueue(make_packet(0, 20), 0);
  for (int i = 0; i < 3; ++i) scheduler.enqueue(make_packet(1, 20), 0);
  const auto& stats = scheduler.stats();
  ASSERT_EQ(stats.tail_drops_per_vn.size(), 2u);
  EXPECT_EQ(stats.tail_drops_per_vn[0], 6u);
  EXPECT_EQ(stats.tail_drops_per_vn[1], 0u);
  EXPECT_EQ(stats.tail_drops_per_vn[0] + stats.tail_drops_per_vn[1],
            stats.tail_drops);

  // Drain. Both VNs queued traffic, so both earn DRR grants, and the
  // accepted packets all make it out.
  std::vector<EgressRecord> egress;
  for (std::uint64_t c = 0; !scheduler.empty(); ++c) {
    scheduler.tick(c, &egress);
  }
  ASSERT_EQ(stats.arbiter_grants_per_vn.size(), 2u);
  EXPECT_GT(stats.arbiter_grants_per_vn[0], 0u);
  EXPECT_GT(stats.arbiter_grants_per_vn[1], 0u);
  EXPECT_EQ(egress.size(), 7u);
}

TEST(SchedulerTest, HistogramsTrackDepthAndWait) {
  DrrScheduler scheduler(two_vn_config());
  std::vector<EgressRecord> egress;
  for (int i = 0; i < 3; ++i) {
    scheduler.enqueue(make_packet(0, 20), 0);
  }
  for (std::uint64_t c = 0; c < 10 && !scheduler.empty(); ++c) {
    scheduler.tick(c, &egress);
  }
  // Depths observed after each accepted enqueue: 1, 2, 3.
  const obs::HistogramSnapshot depth = scheduler.queue_depth_histogram();
  EXPECT_EQ(depth.count(), 3u);
  EXPECT_DOUBLE_EQ(depth.stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(depth.stats.max(), 3.0);
  // One wait sample per transmitted packet, bounded by the records.
  const obs::HistogramSnapshot wait = scheduler.egress_wait_histogram();
  ASSERT_EQ(wait.count(), egress.size());
  for (const EgressRecord& record : egress) {
    EXPECT_LE(wait.stats.min(), static_cast<double>(record.queueing_cycles));
    EXPECT_GE(wait.stats.max(), static_cast<double>(record.queueing_cycles));
  }
}

// ------------------------------------------------------------- frame gen --

class FrameGenFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net::TableProfile profile;
    profile.prefix_count = 200;
    const net::SyntheticTableGenerator gen(profile);
    for (std::uint64_t v = 0; v < 3; ++v) {
      tables_.push_back(gen.generate(30 + v));
    }
    for (const auto& t : tables_) ptrs_.push_back(&t);
  }
  std::vector<RoutingTable> tables_;
  std::vector<const RoutingTable*> ptrs_;
};

TEST_F(FrameGenFixture, ValidFramesHaveGoodChecksums) {
  FrameGenConfig config;
  config.traffic.cycles = 3000;
  const FrameGenerator gen(config, ptrs_);
  for (const IngressFrame& frame : gen.generate(1)) {
    EXPECT_TRUE(frame.header.verify_checksum());
    EXPECT_GE(frame.header.ttl, 2);
    EXPECT_TRUE(
        tables_[frame.vnid].lookup(frame.header.destination).has_value());
  }
}

TEST_F(FrameGenFixture, OversizedPayloadIsRejected) {
  // A payload above kMaxPayloadBytes would wrap the 16-bit total_length
  // wire field; the constructor must reject it instead of emitting frames
  // whose length field silently disagrees with the payload.
  FrameGenConfig config;
  config.traffic.cycles = 100;
  config.payload_sizes = {kMaxPayloadBytes};
  config.payload_weights = {1.0};
  EXPECT_NO_FATAL_FAILURE(FrameGenerator(config, ptrs_));
  config.payload_sizes = {static_cast<std::uint16_t>(kMaxPayloadBytes + 1)};
  EXPECT_DEATH(FrameGenerator(config, ptrs_),
               "payload size overflows the 16-bit total_length field");
}

TEST_F(FrameGenFixture, CorruptFractionProducesBadChecksums) {
  FrameGenConfig config;
  config.traffic.cycles = 6000;
  config.corrupt_fraction = 0.2;
  const FrameGenerator gen(config, ptrs_);
  const auto frames = gen.generate(2);
  std::size_t bad = 0;
  for (const IngressFrame& frame : frames) {
    if (!frame.header.verify_checksum()) ++bad;
  }
  EXPECT_NEAR(static_cast<double>(bad) / static_cast<double>(frames.size()),
              0.2, 0.03);
}

TEST_F(FrameGenFixture, SameSeedReproducesIdenticalFrames) {
  FrameGenConfig config;
  config.traffic.cycles = 2000;
  const FrameGenerator gen(config, ptrs_);
  const auto first = gen.generate(7);
  const auto second = gen.generate(7);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].cycle, second[i].cycle);
    EXPECT_EQ(first[i].vnid, second[i].vnid);
    EXPECT_EQ(first[i].payload_bytes, second[i].payload_bytes);
    EXPECT_EQ(first[i].header.serialize(), second[i].header.serialize());
  }
}

TEST_F(FrameGenFixture, DeriveSeedDecorrelatesNearbySalts) {
  // Scenario seeds are structured (base + small index); derive_seed must
  // spread them so per-run streams are independent, not near-duplicates.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t salt = 0; salt < 64; ++salt) {
    seeds.insert(FrameGenerator::derive_seed(17, salt));
    seeds.insert(FrameGenerator::derive_seed(18, salt));
  }
  EXPECT_EQ(seeds.size(), 128u);

  FrameGenConfig config;
  config.traffic.cycles = 2000;
  const FrameGenerator gen(config, ptrs_);
  const auto a = gen.generate(FrameGenerator::derive_seed(17, 0));
  const auto b = gen.generate(FrameGenerator::derive_seed(17, 1));
  // Adjacent salts must yield different traffic, not a shifted copy.
  std::size_t same = 0;
  const std::size_t n = std::min(a.size(), b.size());
  ASSERT_GT(n, 100u);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].cycle == b[i].cycle &&
        a[i].header.destination == b[i].header.destination) {
      ++same;
    }
  }
  EXPECT_LT(static_cast<double>(same) / static_cast<double>(n), 0.01);
}

TEST_F(FrameGenFixture, PinnedGoldenFrameSequence) {
  // Frozen first frames of (tables seeds 30..32, prefix_count 200,
  // cycles 2000, seed 7). Any diff means the generator's RNG stream
  // discipline changed and every seeded experiment silently re-rolled —
  // regenerate these constants only with an intentional break, and say so
  // in the commit.
  FrameGenConfig config;
  config.traffic.cycles = 2000;
  const FrameGenerator gen(config, ptrs_);
  const auto frames = gen.generate(7);
  struct GoldenFrame {
    std::size_t index;
    std::uint64_t cycle;
    net::VnId vnid;
    std::uint16_t payload_bytes;
    std::uint32_t destination;
    std::uint32_t source;
    std::uint8_t ttl;
    std::uint16_t checksum;
  };
  const GoldenFrame golden[] = {
      {0, 0u, 0, 20, 0xe1fb6152u, 0x4099b97cu, 35, 0x5a4a},
      {1, 1u, 0, 20, 0xe1f8730du, 0x297ad4eeu, 55, 0x304e},
      {2, 2u, 1, 20, 0x85291721u, 0x1407f516u, 23, 0xfe4b},
      {3, 3u, 0, 20, 0x4382b03bu, 0x82c20b9fu, 57, 0xffa3},
      {1999, 1999u, 2, 20, 0x041659edu, 0x98be6544u, 23, 0x3fd9},
  };
  ASSERT_EQ(frames.size(), 2000u);
  for (const GoldenFrame& g : golden) {
    const IngressFrame& f = frames[g.index];
    SCOPED_TRACE(g.index);
    EXPECT_EQ(f.cycle, g.cycle);
    EXPECT_EQ(f.vnid, g.vnid);
    EXPECT_EQ(f.payload_bytes, g.payload_bytes);
    EXPECT_EQ(f.header.destination.value(), g.destination);
    EXPECT_EQ(f.header.source.value(), g.source);
    EXPECT_EQ(f.header.ttl, g.ttl);
    EXPECT_EQ(f.header.checksum, g.checksum);
    EXPECT_TRUE(f.header.verify_checksum());
  }
}

// ------------------------------------------------------------ full router --

class FullRouterFixture : public FrameGenFixture {
 protected:
  void SetUp() override {
    FrameGenFixture::SetUp();
    for (const auto& t : tables_) {
      tries_.emplace_back(trie::UnibitTrie(t).leaf_pushed());
    }
    for (const auto& t : tries_) {
      views_.emplace_back(t);
      trie_ptrs_.push_back(&t);
    }
  }

  FullRouterConfig router_config() const {
    FullRouterConfig config;
    config.scheduler.vn_count = 3;
    config.scheduler.port_count = 16;
    config.scheduler.queue_capacity = 256;
    return config;
  }

  std::vector<trie::UnibitTrie> tries_;
  std::vector<pipeline::TrieView> views_;
  std::vector<const trie::UnibitTrie*> trie_ptrs_;
};

TEST_F(FullRouterFixture, ConservesPackets) {
  FrameGenConfig config;
  config.traffic.cycles = 5000;
  config.traffic.load = 0.5;
  config.corrupt_fraction = 0.05;
  config.expiring_ttl_fraction = 0.05;
  const FrameGenerator gen(config, ptrs_);
  const auto frames = gen.generate(3);

  pipeline::SeparateRouter lookup(views_, 28);
  const FullRouterResult result =
      run_full_router(lookup, frames, router_config());

  // Every frame is accounted for: parser drops + editor drops + scheduler
  // drops + transmitted == offered.
  EXPECT_EQ(result.parser.accepted + result.parser.dropped(), frames.size());
  EXPECT_EQ(result.editor.forwarded + result.editor.no_route +
                result.editor.ttl_expired,
            result.parser.accepted);
  EXPECT_EQ(result.scheduler.transmitted + result.scheduler.tail_drops,
            result.editor.forwarded);
  EXPECT_GT(result.parser.dropped(), 0u);      // corruption present
  EXPECT_EQ(result.editor.no_route, 0u);       // all lookups hit
  EXPECT_EQ(result.egress.size(), result.scheduler.transmitted);
  // The observability snapshots agree with the counters: one depth sample
  // per accepted enqueue, one wait sample per transmitted packet.
  EXPECT_EQ(result.queue_depths.count(), result.scheduler.enqueued);
  EXPECT_EQ(result.egress_wait.count(), result.scheduler.transmitted);
}

TEST_F(FullRouterFixture, EgressTtlDecrementedAndChecksumsValid) {
  FrameGenConfig config;
  config.traffic.cycles = 1500;
  const FrameGenerator gen(config, ptrs_);
  pipeline::SeparateRouter lookup(views_, 28);
  const FullRouterResult result =
      run_full_router(lookup, gen.generate(4), router_config());
  EXPECT_GT(result.egress.size(), 0u);
}

TEST_F(FullRouterFixture, MergedAndSeparateForwardTheSameTraffic) {
  FrameGenConfig config;
  config.traffic.cycles = 4000;
  config.traffic.load = 0.6;
  const FrameGenerator gen(config, ptrs_);
  const auto frames = gen.generate(5);

  pipeline::SeparateRouter separate(views_, 28);
  const FullRouterResult separate_result =
      run_full_router(separate, frames, router_config());

  const virt::MergedTrie merged{
      std::span<const trie::UnibitTrie* const>(trie_ptrs_)};
  pipeline::MergedRouter merged_lookup(merged, 28);
  const FullRouterResult merged_result =
      run_full_router(merged_lookup, frames, router_config());

  // Transparency: both data planes transmit the same per-VN byte volumes.
  EXPECT_EQ(separate_result.scheduler.bytes_per_vn,
            merged_result.scheduler.bytes_per_vn);
  EXPECT_EQ(separate_result.scheduler.transmitted,
            merged_result.scheduler.transmitted);
}

TEST_F(FullRouterFixture, QosSharesFollowTrafficShares) {
  FrameGenConfig config;
  config.traffic.cycles = 20000;
  config.traffic.load = 0.6;
  config.traffic.vn_weights = {2.0, 1.0, 1.0};
  const FrameGenerator gen(config, ptrs_);
  pipeline::SeparateRouter lookup(views_, 28);
  const FullRouterResult result =
      run_full_router(lookup, gen.generate(6), router_config());
  const auto shares = result.goodput_shares();
  EXPECT_NEAR(shares[0], 0.5, 0.05);
  EXPECT_NEAR(shares[1], 0.25, 0.04);
}

}  // namespace
}  // namespace vr::dataplane
