#include "fpga/bram.hpp"

#include <algorithm>

#include "common/bitops.hpp"

namespace vr::fpga {

const char* to_string(BramPolicy policy) noexcept {
  switch (policy) {
    case BramPolicy::k18Only:
      return "18Kb-only";
    case BramPolicy::k36Only:
      return "36Kb-only";
    case BramPolicy::kMixed:
      return "mixed";
  }
  return "?";
}

BramAllocation allocate_bram(std::uint64_t bits, BramPolicy policy) noexcept {
  BramAllocation alloc;
  if (bits == 0) return alloc;
  const std::uint64_t cap18 = bram_capacity_bits(BramKind::k18);
  const std::uint64_t cap36 = bram_capacity_bits(BramKind::k36);
  switch (policy) {
    case BramPolicy::k18Only:
      alloc.blocks18 = ceil_div(bits, cap18);
      break;
    case BramPolicy::k36Only:
      alloc.blocks36 = ceil_div(bits, cap36);
      break;
    case BramPolicy::kMixed: {
      alloc.blocks36 = bits / cap36;
      const std::uint64_t rest = bits - alloc.blocks36 * cap36;
      if (rest == 0) break;
      if (rest <= cap18) {
        alloc.blocks18 = 1;
      } else {
        ++alloc.blocks36;
      }
      break;
    }
  }
  return alloc;
}

double StageBramPlan::mean_stage_blocks36eq() const noexcept {
  if (per_stage.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& alloc : per_stage) sum += alloc.blocks36_equivalent();
  return sum / static_cast<double>(per_stage.size());
}

StageBramPlan plan_stage_bram(const std::vector<std::uint64_t>& stage_bits,
                              BramPolicy policy) {
  StageBramPlan plan;
  plan.per_stage.reserve(stage_bits.size());
  for (const std::uint64_t bits : stage_bits) {
    const BramAllocation alloc = allocate_bram(bits, policy);
    plan.total += alloc;
    plan.max_stage_blocks36eq =
        std::max(plan.max_stage_blocks36eq, alloc.blocks36_equivalent());
    plan.per_stage.push_back(alloc);
  }
  return plan;
}

std::uint64_t device_bram_halves(const DeviceSpec& spec) noexcept {
  return spec.bram_bits / bram_capacity_bits(BramKind::k18);
}

}  // namespace vr::fpga
