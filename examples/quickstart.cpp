// Quickstart: estimate the Layer-3 power of an 8-network virtualized edge
// router on a Virtex-6 XC6VLX760, compare the three deployment schemes and
// validate the analytical model against the simulated post place-and-route
// analysis.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <iostream>

#include "common/table.hpp"
#include "core/validator.hpp"

int main() {
  using namespace vr;

  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();
  const core::ModelValidator validator(device);

  core::Scenario scenario;
  scenario.vn_count = 8;                       // eight virtual networks
  scenario.grade = fpga::SpeedGrade::kMinus2;  // high-performance grade
  scenario.stages = 28;                        // paper Sec. VI
  scenario.alpha = 0.8;                        // merging efficiency for VM

  TextTable table("8 virtual networks on " + device.name + " (grade -2)");
  table.set_header({"scheme", "model W", "exp W", "err %", "clock MHz",
                    "Gbps", "mW/Gbps", "fits device"});
  for (const power::Scheme scheme :
       {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
        power::Scheme::kMerged}) {
    scenario.scheme = scheme;
    const core::ValidationPoint point = validator.validate(scenario);
    table.add_row({
        power::to_string(scheme),
        TextTable::num(point.model.power.total_w().value(), 3),
        TextTable::num(point.experiment.power.total_w().value(), 3),
        TextTable::num(point.error_total_pct, 2),
        TextTable::num(point.model.freq_mhz.value(), 1),
        TextTable::num(point.model.throughput_gbps.value(), 1),
        TextTable::num(point.model.mw_per_gbps.value(), 2),
        point.model.fit.fits ? "yes" : "NO",
    });
  }
  table.render(std::cout);

  std::cout << "\nVirtualizing 8 edge networks onto one device saves the\n"
               "leakage of 7 dedicated FPGAs; the separate scheme keeps the\n"
               "full aggregate throughput, so it wins on mW/Gbps.\n";
  return 0;
}
