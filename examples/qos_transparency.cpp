// QoS transparency demonstration — the paper's core promise (Sec. I):
// "this process of virtualization must be transparent to the user ...
// before and after the process, the user should not experience any
// difference in the service received".
//
// Three tenants with a 2:1:1 traffic mix and DRR-weighted egress run
// through (a) dedicated per-tenant routers (the NV world) and (b) one
// consolidated router with either the separate or merged data plane. The
// example shows per-tenant goodput shares and egress latency are
// preserved across all three deployments, while the power differs by ~K.
//
// Run: ./build/examples/qos_transparency
#include <iostream>

#include "common/table.hpp"
#include "core/estimator.hpp"
#include "dataplane/full_router.hpp"
#include "netbase/table_gen.hpp"
#include "virt/merged_trie.hpp"

namespace {

constexpr std::size_t kTenants = 3;
constexpr std::size_t kStages = 28;

}  // namespace

int main() {
  using namespace vr;

  // Three tenant networks with a 2:1:1 offered-traffic mix.
  net::TableProfile profile;
  profile.prefix_count = 1200;
  const net::SyntheticTableGenerator table_gen(profile);
  std::vector<net::RoutingTable> tables;
  std::vector<const net::RoutingTable*> table_ptrs;
  for (std::uint64_t v = 0; v < kTenants; ++v) {
    tables.push_back(table_gen.generate(v + 1));
  }
  for (const auto& t : tables) table_ptrs.push_back(&t);

  dataplane::FrameGenConfig frame_config;
  frame_config.traffic.cycles = 30000;
  frame_config.traffic.load = 0.7;
  frame_config.traffic.vn_weights = {2.0, 1.0, 1.0};
  const dataplane::FrameGenerator frame_gen(frame_config, table_ptrs);
  const auto frames = frame_gen.generate(99);

  std::vector<trie::UnibitTrie> tries;
  for (const auto& t : tables) {
    tries.push_back(trie::UnibitTrie(t).leaf_pushed());
  }
  std::vector<pipeline::TrieView> views;
  std::vector<const trie::UnibitTrie*> trie_ptrs;
  for (const auto& t : tries) {
    views.emplace_back(t);
    trie_ptrs.push_back(&t);
  }
  const virt::MergedTrie merged{
      std::span<const trie::UnibitTrie* const>(trie_ptrs)};

  dataplane::FullRouterConfig router_config;
  router_config.scheduler.vn_count = kTenants;
  router_config.scheduler.vn_weights = {2.0, 1.0, 1.0};  // contracted QoS
  router_config.scheduler.queue_capacity = 256;

  TextTable table("Per-tenant service before/after consolidation");
  table.set_header({"data plane", "VN0 share", "VN1 share", "VN2 share",
                    "VN0 lat", "VN1 lat", "VN2 lat", "tx pkts"});
  auto report = [&](const char* name,
                    const dataplane::FullRouterResult& result) {
    const auto shares = result.goodput_shares();
    const auto latency = result.mean_queueing_cycles(kTenants);
    table.add_row({name, TextTable::num(shares[0], 3),
                   TextTable::num(shares[1], 3),
                   TextTable::num(shares[2], 3),
                   TextTable::num(latency[0], 1),
                   TextTable::num(latency[1], 1),
                   TextTable::num(latency[2], 1),
                   std::to_string(result.scheduler.transmitted)});
  };

  {
    pipeline::SeparateRouter lookup(views, kStages);
    report("separate (VS / NV)",
           run_full_router(lookup, frames, router_config));
  }
  {
    pipeline::MergedRouter lookup(merged, kStages);
    report("merged (VM)", run_full_router(lookup, frames, router_config));
  }
  table.render(std::cout);

  // Power context for the same three deployments.
  const core::PowerEstimator estimator{fpga::DeviceSpec::xc6vlx760()};
  std::cout << "\nLayer-3 power for the same 3 tenants:\n";
  for (const auto scheme :
       {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
        power::Scheme::kMerged}) {
    core::Scenario s;
    s.scheme = scheme;
    s.vn_count = kTenants;
    s.table_profile = profile;
    std::cout << "  " << power::to_string(scheme) << ": "
              << TextTable::num(estimator.estimate(s).power.total_w().value(), 2)
              << " W\n";
  }
  std::cout << "\nSame shares, same latency, one third the devices: the\n"
               "service each tenant sees is unchanged while the leakage of\n"
               "two FPGAs is saved -- the paper's transparency argument.\n";
  return 0;
}
