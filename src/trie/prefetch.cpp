#include "trie/prefetch.hpp"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>

namespace vr::trie {

namespace {

std::optional<unsigned> parse_prefetch_env() {
  const char* env = std::getenv("VR_PREFETCH_DIST");
  if (env == nullptr) return std::nullopt;
  const std::string_view text(env);
  unsigned parsed = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec == std::errc() && end == text.data() + text.size() && parsed >= 1 &&
      parsed <= kMaxPrefetchDistance) {
    return parsed;
  }
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "vrpower: ignoring invalid VR_PREFETCH_DIST=\"%s\" "
                 "(expected an integer in [1, %u]); using the built-in "
                 "default\n",
                 env, kMaxPrefetchDistance);
  }
  return std::nullopt;
}

}  // namespace

unsigned prefetch_distance(unsigned fallback) {
  // Read the environment once: the hot loops call this per batch.
  static const std::optional<unsigned> env_distance = parse_prefetch_env();
  return env_distance.value_or(fallback);
}

}  // namespace vr::trie
