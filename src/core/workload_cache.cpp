#include "core/workload_cache.hpp"

#include <cstdio>
#include <utility>

namespace vr::core {

namespace {

void append_double(std::string* out, double value) {
  char buffer[48];
  // Hexfloat round-trips exactly; "%a" output is locale-independent.
  std::snprintf(buffer, sizeof buffer, "%a,", value);
  *out += buffer;
}

void append_size(std::string* out, std::uint64_t value) {
  *out += std::to_string(value);
  *out += ',';
}

}  // namespace

std::string WorkloadCache::key(const Scenario& scenario, bool keep_tables) {
  std::string key;
  key.reserve(160);
  append_size(&key, static_cast<std::uint64_t>(scenario.scheme));
  append_size(&key, scenario.vn_count);
  append_size(&key, scenario.stages);
  append_size(&key, scenario.seed);
  append_double(&key, scenario.alpha);
  append_size(&key, static_cast<std::uint64_t>(scenario.merged_source));
  append_size(&key, static_cast<std::uint64_t>(scenario.merged_rule));
  append_size(&key, scenario.leaf_push ? 1 : 0);
  append_double(&key, scenario.table_size_spread);
  append_size(&key, keep_tables ? 1 : 0);
  const net::TableProfile& profile = scenario.table_profile;
  append_size(&key, profile.prefix_count);
  append_size(&key, profile.provider_blocks);
  append_size(&key, profile.provider_block_length);
  append_size(&key, profile.min_length);
  append_size(&key, profile.density_span);
  append_double(&key, profile.nested_fraction);
  append_size(&key, profile.next_hop_count);
  for (const double weight : profile.length_weights) {
    append_double(&key, weight);
  }
  return key;
}

std::shared_ptr<const Workload> WorkloadCache::realize(
    const Scenario& scenario, bool keep_tables) {
  const std::string cache_key = key(scenario, keep_tables);
  std::promise<std::shared_ptr<const Workload>> promise;
  Entry entry;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(cache_key);
    if (it != entries_.end()) {
      ++stats_.hits;
      entry = it->second;
    } else {
      ++stats_.misses;
      entry = promise.get_future().share();
      entries_.emplace(cache_key, entry);
      builder = true;
    }
  }
  if (!builder) return entry.get();
  try {
    auto workload =
        std::make_shared<const Workload>(realize_workload(scenario,
                                                          keep_tables));
    promise.set_value(workload);
    return workload;
  } catch (...) {
    // Failed builds must not poison the cache permanently: propagate the
    // exception to every waiter of this entry, then drop it.
    promise.set_exception(std::current_exception());
    {
      const std::lock_guard<std::mutex> lock(mu_);
      entries_.erase(cache_key);
    }
    throw;
  }
}

WorkloadCache::Stats WorkloadCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WorkloadCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = Stats{};
}

WorkloadCache& WorkloadCache::global() {
  static WorkloadCache cache;
  return cache;
}

std::shared_ptr<const Workload> realize_workload_cached(
    const Scenario& scenario, bool keep_tables) {
  return WorkloadCache::global().realize(scenario, keep_tables);
}

}  // namespace vr::core
