// Differential verification of the flat stride-k multibit lookup image:
// every consumer path (scalar lookup, prefetch-pipelined batch, the
// pipeline simulator's stride-aware TrieView) must return exactly what the
// UnibitTrie oracle returns over the same table, for every stride. Also
// pins the NodeIndex narrowing guard introduced with the flatteners.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "common/rng.hpp"
#include "netbase/table_gen.hpp"
#include "pipeline/lookup_engine.hpp"
#include "trie/flat_multibit_trie.hpp"
#include "trie/multibit_trie.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::trie {
namespace {

using net::Ipv4;
using net::Packet;
using net::Prefix;
using net::RoutingTable;

// Force a >1 pipelining window for the whole binary (before any lookup
// caches the distance): the unibit default of 1 would leave the
// lane-interleaved path of FlatTrie untested, and these differential
// tests are exactly where that path must prove itself.
const bool kForcePipelinedBatches = [] {
  ::setenv("VR_PREFETCH_DIST", "6", 1);
  return true;
}();

RoutingTable gen_table(std::uint64_t seed, std::size_t prefixes = 500) {
  net::TableProfile profile;
  profile.prefix_count = prefixes;
  return net::SyntheticTableGenerator(profile).generate(seed);
}

std::vector<Ipv4> random_addrs(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Ipv4> addrs;
  addrs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
  }
  return addrs;
}

TEST(FlatMultibitTrieTest, RejectsBadStride) {
  const RoutingTable table = gen_table(1, 50);
  EXPECT_DEATH(FlatMultibitTrie(table, 0), "stride");
  EXPECT_DEATH(FlatMultibitTrie(table, 1), "stride");
  EXPECT_DEATH(FlatMultibitTrie(table, 3), "stride");
  EXPECT_DEATH(FlatMultibitTrie(table, 16), "stride");
}

TEST(FlatMultibitTrieTest, HandCheckedStride4) {
  RoutingTable table;
  table.add(*Prefix::parse("0.0.0.0/0"), 7);     // default route
  table.add(*Prefix::parse("10.0.0.0/8"), 3);    // two full strides
  table.add(*Prefix::parse("10.128.0.0/9"), 4);  // expands within level 2
  const FlatMultibitTrie flat(table, 4);
  EXPECT_EQ(flat.stride(), 4u);
  EXPECT_EQ(flat.width(), 16u);
  EXPECT_EQ(flat.max_level_count(), 8u);
  EXPECT_EQ(flat.lookup(Ipv4(10, 1, 1, 1)), 3);
  EXPECT_EQ(flat.lookup(Ipv4(10, 200, 1, 1)), 4);
  EXPECT_EQ(flat.lookup(Ipv4(200, 1, 1, 1)), 7);
}

TEST(FlatMultibitTrieTest, EmptyTableHasNoRoutes) {
  const RoutingTable table;
  const FlatMultibitTrie flat(table, 8);
  EXPECT_EQ(flat.node_count(), 1u);  // just the root
  EXPECT_EQ(flat.lookup(Ipv4(1, 2, 3, 4)), std::nullopt);
  const std::vector<Ipv4> addrs = random_addrs(64, 3);
  for (const net::NextHop hop : flat.lookup_batch(addrs)) {
    EXPECT_EQ(hop, net::kNoRoute);
  }
}

TEST(FlatMultibitTrieTest, HostRouteExactMatch) {
  RoutingTable table;
  table.add(*Prefix::parse("192.168.1.77/32"), 9);
  table.add(*Prefix::parse("192.168.1.76/32"), 5);
  for (const unsigned stride : {2u, 4u, 8u}) {
    const FlatMultibitTrie flat(table, stride);
    EXPECT_EQ(flat.lookup(Ipv4(192, 168, 1, 77)), 9) << stride;
    EXPECT_EQ(flat.lookup(Ipv4(192, 168, 1, 76)), 5) << stride;
    EXPECT_EQ(flat.lookup(Ipv4(192, 168, 1, 78)), std::nullopt) << stride;
    EXPECT_EQ(flat.level_count(), flat.max_level_count()) << stride;
  }
}

class FlatMultibitDifferential
    : public ::testing::TestWithParam<unsigned /*stride*/> {};

TEST_P(FlatMultibitDifferential, ScalarMatchesUnibitOracle) {
  const unsigned stride = GetParam();
  const RoutingTable table = gen_table(stride + 40);
  const FlatMultibitTrie flat(table, stride);
  const UnibitTrie oracle(table);
  Rng rng(stride);
  for (int i = 0; i < 3000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(flat.lookup(addr), oracle.lookup(addr));
  }
}

TEST_P(FlatMultibitDifferential, BatchMatchesScalar) {
  const unsigned stride = GetParam();
  const RoutingTable table = gen_table(stride + 41);
  const FlatMultibitTrie flat(table, stride);
  // Odd batch sizes stress the lane refill/compaction logic (the window
  // never divides these evenly); 0 and 1 hit the degenerate paths.
  for (const std::size_t size : {0u, 1u, 5u, 6u, 7u, 257u, 1000u}) {
    const std::vector<Ipv4> addrs = random_addrs(size, stride * 100 + size);
    const std::vector<net::NextHop> batch = flat.lookup_batch(addrs);
    ASSERT_EQ(batch.size(), size);
    for (std::size_t i = 0; i < size; ++i) {
      const auto scalar = flat.lookup(addrs[i]);
      EXPECT_EQ(batch[i], scalar.value_or(net::kNoRoute)) << i;
    }
  }
}

TEST_P(FlatMultibitDifferential, FlattenedMultibitTrieIsIdentical) {
  const unsigned stride = GetParam();
  const RoutingTable table = gen_table(stride + 42);
  const MultibitTrie source(table, stride);
  const FlatMultibitTrie flattened(source);
  const FlatMultibitTrie direct(table, stride);
  EXPECT_EQ(flattened.node_count(), source.node_count());
  EXPECT_EQ(flattened.level_count(), source.level_count());
  EXPECT_EQ(flattened.node_count(), direct.node_count());
  Rng rng(stride + 7);
  for (int i = 0; i < 2000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    const auto expected = source.lookup(addr);
    EXPECT_EQ(flattened.lookup(addr), expected);
    EXPECT_EQ(direct.lookup(addr), expected);
  }
}

TEST_P(FlatMultibitDifferential, MergedImageMatchesPerVnOracles) {
  const unsigned stride = GetParam();
  std::vector<RoutingTable> tables;
  std::vector<const RoutingTable*> ptrs;
  std::vector<UnibitTrie> oracles;
  for (std::uint64_t v = 0; v < 3; ++v) {
    tables.push_back(gen_table(60 + v, 300));
  }
  for (const RoutingTable& t : tables) {
    ptrs.push_back(&t);
    oracles.emplace_back(t);
  }
  const FlatMultibitTrie merged(ptrs, stride);
  EXPECT_EQ(merged.vn_count(), 3u);

  Rng rng(stride + 13);
  std::vector<Packet> packets;
  for (int i = 0; i < 1500; ++i) {
    Packet p;
    p.addr = Ipv4(static_cast<std::uint32_t>(rng.next_u64()));
    p.vnid = static_cast<net::VnId>(i % 3);
    packets.push_back(p);
  }
  const std::vector<net::NextHop> batch = merged.lookup_batch(packets);
  ASSERT_EQ(batch.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto expected = oracles[packets[i].vnid].lookup(packets[i].addr);
    EXPECT_EQ(merged.lookup(packets[i].addr, packets[i].vnid), expected);
    EXPECT_EQ(batch[i], expected.value_or(net::kNoRoute)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, FlatMultibitDifferential,
                         ::testing::Values(2u, 4u, 8u));

TEST(FlatMultibitPipelineTest, EngineMatchesScalarLookups) {
  const RoutingTable table = gen_table(77);
  const auto image =
      std::make_shared<const FlatMultibitTrie>(table, /*stride=*/8);
  const pipeline::TrieView view{image};
  EXPECT_TRUE(view.is_multibit());
  EXPECT_EQ(view.stride(), 8u);
  EXPECT_EQ(view.max_levels(), 4u);
  pipeline::LookupEngine engine(view, view.level_count());

  const std::vector<Ipv4> addrs = random_addrs(200, 5);
  std::vector<pipeline::LookupResult> results;
  std::size_t offered = 0;
  while (offered < addrs.size() || !engine.drained()) {
    if (offered < addrs.size() &&
        engine.offer(Packet{addrs[offered], 0})) {
      ++offered;
    }
    engine.tick(&results);
  }
  ASSERT_EQ(results.size(), addrs.size());
  for (const pipeline::LookupResult& result : results) {
    EXPECT_EQ(result.next_hop, image->lookup(result.packet.addr));
  }
}

TEST(FlatMultibitPipelineTest, RejectsTooShallowPipeline) {
  const RoutingTable table = gen_table(78);
  const auto image =
      std::make_shared<const FlatMultibitTrie>(table, /*stride=*/2);
  const pipeline::TrieView view{image};
  ASSERT_GE(view.level_count(), 2u);
  EXPECT_THROW(pipeline::LookupEngine(view, view.level_count() - 1),
               CapacityError);
}

TEST(NodeIndexGuardTest, ChecksFlattenerNarrowing) {
  EXPECT_EQ(checked_node_index(0, "mock flattener"), 0u);
  EXPECT_EQ(checked_node_index(kMaxNodeCount - 1, "mock flattener"),
            kNullNode - 1u);
  // A (mocked) node count at or past the NodeIndex ceiling must fail
  // loudly instead of silently wrapping into a valid-looking index.
  EXPECT_DEATH((void)checked_node_index(kMaxNodeCount, "mock flattener"),
               "mock flattener");
  EXPECT_DEATH((void)checked_node_index(kMaxNodeCount + 1, "mock flattener"),
               "node count exceeds");
}

}  // namespace
}  // namespace vr::trie
