// Summary statistics used by benches, the model validator and the tests.
#pragma once

#include <cstddef>
#include <vector>

namespace vr {

/// Single-pass running statistics (Welford's algorithm). Numerically stable
/// mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel-reduction friendly).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set using linear interpolation between closest
/// ranks. `q` in [0,1]. The input vector is copied; for repeated queries use
/// Percentiles below.
double percentile(std::vector<double> samples, double q);

/// Batch percentile evaluator: sorts once, answers many queries.
class Percentiles {
 public:
  explicit Percentiles(std::vector<double> samples);

  [[nodiscard]] double at(double q) const;
  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

/// Relative difference |a-b| / max(|a|,|b|,eps); symmetric, safe near zero.
double relative_difference(double a, double b) noexcept;

/// Signed percentage error of a model value against an experimental
/// reference, exactly as defined in the paper (Sec. VI-A):
///   (model - experimental) / experimental * 100.
double percentage_error(double model, double experimental) noexcept;

}  // namespace vr
