// Regenerates paper Fig. 4: pointer and NHI memory requirements vs number
// of virtual networks for merged (α = 80 %, α = 20 %) and separate.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  const core::FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(),
                                    bench::paper_options(argc, argv));
  const core::FigureBuilder::Fig4 fig = builder.fig4_memory();
  bench::emit(fig.pointer_memory);
  bench::emit(fig.nhi_memory);
  return 0;
}
