#include "power/activity_model.hpp"

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "fpga/bram.hpp"

namespace vr::power {

EventEnergies EventEnergies::from_xpe(fpga::SpeedGrade grade) noexcept {
  const double logic_pj =
      fpga::XpeTables::logic_stage_uw_per_mhz(grade).value();
  const double bram18_pj =
      fpga::XpeTables::bram_uw_per_mhz(fpga::BramKind::k18, grade).value();
  return EventEnergies{
      .buffer_read_pj = units::Picojoules{bram18_pj},
      .buffer_write_pj = units::Picojoules{bram18_pj},
      .parser_pj = units::Picojoules{logic_pj},
      .crossbar_pj = units::Picojoules{logic_pj},
      .arbiter_pj = units::Picojoules{0.5 * logic_pj},
      .editor_pj = units::Picojoules{logic_pj},
  };
}

namespace {

/// pJ charged per busy cycle of one stage's BRAM allocation — Table III
/// block coefficients via the µW/MHz ≡ pJ/cycle identity.
units::Picojoules stage_bram_pj(const fpga::BramAllocation& alloc,
                                fpga::SpeedGrade grade) noexcept {
  const double energy_pj =
      static_cast<double>(alloc.blocks18) *
          fpga::XpeTables::bram_uw_per_mhz(fpga::BramKind::k18, grade)
              .value() +
      static_cast<double>(alloc.blocks36) *
          fpga::XpeTables::bram_uw_per_mhz(fpga::BramKind::k36, grade)
              .value();
  return units::Picojoules{energy_pj};
}

/// The engine whose memory image VN `vn` traverses: its own engine under
/// NV/VS, the shared merged engine under VM.
const EngineSpec& engine_for_vn(const ModelContext& ctx, std::size_t vn) {
  if (ctx.scheme == Scheme::kMerged) {
    VR_REQUIRE(ctx.merged_engine != nullptr,
               "merged scheme needs a merged engine spec");
    return *ctx.merged_engine;
  }
  VR_REQUIRE(ctx.engines.size() == ctx.vn_count,
             "separate schemes need one engine spec per VN");
  return ctx.engines[vn];
}

}  // namespace

ActivityPower ActivityModel::estimate(const ModelContext& ctx) const {
  VR_REQUIRE(ctx.activity != nullptr,
             "activity model needs measured counters");
  const ActivityCounters& act = *ctx.activity;
  VR_REQUIRE(act.vn_count() == ctx.vn_count,
             "activity counters must cover every VN");
  const std::size_t stages = act.stage_count();
  VR_REQUIRE(stages >= 1, "activity counters must cover the pipeline");

  const EventEnergies energies =
      energies_.has_value() ? *energies_ : EventEnergies::from_xpe(ctx.op.grade);
  const units::Picojoules logic_pj{
      fpga::XpeTables::logic_stage_uw_per_mhz(ctx.op.grade).value()};
  const units::Cycles window{static_cast<double>(act.cycles)};
  const units::Megahertz freq = ctx.op.freq_mhz;

  ActivityPower out;
  out.per_vn_w.resize(ctx.vn_count);
  out.per_vn_overhead_w.resize(ctx.vn_count);
  out.cycles = window;
  out.freq_mhz = freq;

  // Per-stage memory coefficients, resolved once per distinct engine. VM
  // shares one plan across VNs; NV/VS plan per VN.
  std::vector<std::vector<units::Picojoules>> stage_pj(ctx.vn_count);
  for (std::size_t vn = 0; vn < ctx.vn_count; ++vn) {
    if (ctx.scheme == Scheme::kMerged && vn > 0) {
      stage_pj[vn] = stage_pj[0];
      continue;
    }
    const EngineSpec& engine = engine_for_vn(ctx, vn);
    VR_REQUIRE(engine.stage_count() == stages,
               "activity counters and engine spec disagree on stage count");
    const fpga::StageBramPlan plan =
        fpga::plan_stage_bram(engine.stage_bits, ctx.op.bram_policy);
    stage_pj[vn].reserve(stages);
    for (const fpga::BramAllocation& alloc : plan.per_stage) {
      stage_pj[vn].push_back(stage_bram_pj(alloc, ctx.op.grade));
    }
  }

  for (std::size_t vn = 0; vn < ctx.vn_count; ++vn) {
    units::Picojoules logic_energy_pj;
    units::Picojoules memory_energy_pj;
    units::Picojoules gated_energy_pj;
    for (std::size_t s = 0; s < stages; ++s) {
      const double busy = static_cast<double>(act.busy(vn, s));
      const double reads = static_cast<double>(act.reads(vn, s));
      logic_energy_pj += logic_pj * busy;
      memory_energy_pj += stage_pj[vn][s] * busy;
      gated_energy_pj += stage_pj[vn][s] * reads;
    }
    const units::Watts logic_w =
        units::average_power(logic_energy_pj, window, freq);
    const units::Watts memory_w =
        units::average_power(memory_energy_pj, window, freq);
    out.per_vn_w[vn] = logic_w + memory_w;
    out.logic_w += logic_w;
    out.memory_w += memory_w;
    out.memory_gated_w += units::average_power(gated_energy_pj, window, freq);

    const units::Picojoules parser_pj =
        energies.parser_pj * static_cast<double>(act.parser_headers[vn]);
    const units::Picojoules buffer_pj =
        energies.buffer_write_pj * static_cast<double>(act.buffer_writes[vn]) +
        energies.buffer_read_pj * static_cast<double>(act.buffer_reads[vn]);
    const units::Picojoules crossbar_pj =
        energies.crossbar_pj *
        static_cast<double>(act.crossbar_traversals[vn]);
    const units::Picojoules arbiter_pj =
        energies.arbiter_pj * static_cast<double>(act.arbiter_decisions[vn]);
    const units::Picojoules editor_pj =
        energies.editor_pj * static_cast<double>(act.editor_rewrites[vn]);

    const units::Watts parser_w = units::average_power(parser_pj, window, freq);
    const units::Watts buffer_w = units::average_power(buffer_pj, window, freq);
    const units::Watts crossbar_w =
        units::average_power(crossbar_pj, window, freq);
    const units::Watts arbiter_w =
        units::average_power(arbiter_pj, window, freq);
    const units::Watts editor_w = units::average_power(editor_pj, window, freq);

    out.per_vn_overhead_w[vn] =
        parser_w + buffer_w + crossbar_w + arbiter_w + editor_w;
    out.parser_w += parser_w;
    out.buffer_w += buffer_w;
    out.crossbar_w += crossbar_w;
    out.arbiter_w += arbiter_w;
    out.editor_w += editor_w;
  }
  return out;
}

std::vector<units::Watts> ActivityModel::per_vn_dynamic_w(
    const ModelContext& ctx) const {
  return estimate(ctx).per_vn_w;
}

}  // namespace vr::power
