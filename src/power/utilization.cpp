#include "power/utilization.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vr::power {

std::vector<double> uniform_utilization(std::size_t vn_count,
                                        double total_load) {
  VR_REQUIRE(vn_count >= 1, "need at least one VN");
  VR_REQUIRE(total_load >= 0.0, "total load must be non-negative");
  return std::vector<double>(vn_count,
                             total_load / static_cast<double>(vn_count));
}

std::vector<double> zipf_utilization(std::size_t vn_count, double skew,
                                     double total_load) {
  VR_REQUIRE(vn_count >= 1, "need at least one VN");
  VR_REQUIRE(skew >= 0.0, "skew must be non-negative");
  std::vector<double> mu(vn_count);
  double total = 0.0;
  for (std::size_t i = 0; i < vn_count; ++i) {
    mu[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
    total += mu[i];
  }
  for (double& m : mu) m *= total_load / total;
  return mu;
}

std::vector<double> duty_cycled_utilization(std::size_t vn_count, double peak,
                                            double duty) {
  VR_REQUIRE(peak >= 0.0 && peak <= 1.0, "peak must be in [0,1]");
  VR_REQUIRE(duty >= 0.0 && duty <= 1.0, "duty must be in [0,1]");
  return std::vector<double>(vn_count, peak * duty);
}

}  // namespace vr::power
