file(REMOVE_RECURSE
  "CMakeFiles/edge_consolidation.dir/edge_consolidation.cpp.o"
  "CMakeFiles/edge_consolidation.dir/edge_consolidation.cpp.o.d"
  "edge_consolidation"
  "edge_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
