file(REMOVE_RECURSE
  "CMakeFiles/vrpower_report.dir/vrpower_report.cpp.o"
  "CMakeFiles/vrpower_report.dir/vrpower_report.cpp.o.d"
  "vrpower_report"
  "vrpower_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrpower_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
