# Empty dependencies file for trie_diff_test.
# This may be replaced when dependencies are built.
