// Unit conventions and conversion helpers.
//
// The library passes physical quantities as plain doubles with the unit
// encoded in the identifier name (e.g. `power_w`, `freq_mhz`, `memory_bits`).
// This header centralizes the conversion factors so that no magic constants
// appear in model code. The conventions are:
//
//   power        watts (W)            — model outputs
//   energy       picojoules (pJ)      — per-cycle accounting in the simulator
//   frequency    megahertz (MHz)      — matches the paper's coefficient units
//   memory       bits                 — BRAM sizing
//   throughput   gigabits/second      — the paper's efficiency denominator
#pragma once

namespace vr::units {

inline constexpr double kMicroPerUnit = 1e6;
inline constexpr double kMilliPerUnit = 1e3;

/// Converts microwatts to watts.
constexpr double uw_to_w(double microwatts) noexcept {
  return microwatts / kMicroPerUnit;
}

/// Converts watts to microwatts.
constexpr double w_to_uw(double watts) noexcept {
  return watts * kMicroPerUnit;
}

/// Converts watts to milliwatts.
constexpr double w_to_mw(double watts) noexcept {
  return watts * kMilliPerUnit;
}

/// Converts milliwatts to watts.
constexpr double mw_to_w(double milliwatts) noexcept {
  return milliwatts / kMilliPerUnit;
}

/// Kib/Mib in bits, as used for BRAM capacities ("18 Kb block", "26 Mb").
inline constexpr double kKibit = 1024.0;
inline constexpr double kMibit = 1024.0 * 1024.0;

/// A power coefficient of the form `P(µW) = c · f(MHz)` is numerically equal
/// to an energy of `c` picojoules per clock cycle:
///   P = c·f µW = c·f·1e-6 W; cycles/s = f·1e6; E = P/cycles = c·1e-12 J.
/// This identity lets the cycle-level pipeline simulator account energy with
/// the same coefficients the analytical model uses.
constexpr double uw_per_mhz_to_pj_per_cycle(double coefficient) noexcept {
  return coefficient;
}

/// Average power (W) of `energy_pj` picojoules spent over `cycles` cycles at
/// `freq_mhz` MHz: P = E / t, t = cycles / (f·1e6).
constexpr double pj_over_cycles_to_w(double energy_pj, double cycles,
                                     double freq_mhz) noexcept {
  if (cycles <= 0.0) return 0.0;
  return energy_pj * 1e-12 / (cycles / (freq_mhz * 1e6));
}

/// Throughput in Gbps of one lookup pipeline issuing one packet per cycle at
/// `freq_mhz` MHz with minimum-size packets of `packet_bytes` bytes.
/// The paper (Sec. VI-B) uses 40-byte packets: Gbps = 0.32 · f(MHz).
constexpr double lookup_throughput_gbps(double freq_mhz,
                                        double packet_bytes) noexcept {
  return freq_mhz * 1e6 * packet_bytes * 8.0 / 1e9;
}

inline constexpr double kMinPacketBytes = 40.0;

}  // namespace vr::units
