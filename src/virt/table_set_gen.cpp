#include "virt/table_set_gen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/error.hpp"

namespace vr::virt {

CorrelatedTableSetGenerator::CorrelatedTableSetGenerator(TableSetConfig config)
    : config_(std::move(config)), base_gen_(config_.profile) {
  VR_REQUIRE(config_.alpha_tolerance > 0.0, "alpha_tolerance must be > 0");
}

double CorrelatedTableSetGenerator::measure_alpha(
    const std::vector<net::RoutingTable>& tables) const {
  VR_REQUIRE(!tables.empty(), "empty table set");
  std::vector<trie::UnibitTrie> tries;
  tries.reserve(tables.size());
  for (const auto& table : tables) {
    trie::UnibitTrie t(table);
    tries.push_back(config_.leaf_push ? t.leaf_pushed() : std::move(t));
  }
  std::vector<const trie::UnibitTrie*> ptrs;
  ptrs.reserve(tries.size());
  for (const auto& t : tries) ptrs.push_back(&t);
  const MergedTrie merged(ptrs);
  return merged.stats().alpha_effective(tables.size());
}

TableSet CorrelatedTableSetGenerator::generate(std::size_t vn_count,
                                               double mutation_fraction,
                                               std::uint64_t seed) const {
  VR_REQUIRE(vn_count >= 1, "vn_count must be >= 1");
  VR_REQUIRE(mutation_fraction >= 0.0 && mutation_fraction <= 1.0,
             "mutation_fraction must be in [0,1]");
  const net::RoutingTable base = base_gen_.generate(seed);

  // Each VN re-draws its mutated prefixes from an independent generator
  // stream so that mutated content is uncorrelated across VNs.
  TableSet set;
  set.mutation_fraction = mutation_fraction;
  set.tables.reserve(vn_count);
  Rng rng(seed ^ 0x5eedf00dULL);
  for (std::size_t v = 0; v < vn_count; ++v) {
    Rng vn_rng = rng.fork();
    std::vector<net::Route> routes;
    routes.reserve(base.size());
    std::size_t mutated = 0;
    for (const net::Route& route : base.routes()) {
      if (vn_rng.next_bool(mutation_fraction)) {
        ++mutated;
      } else {
        routes.push_back(route);
      }
    }
    net::RoutingTable table{std::move(routes)};
    if (mutated > 0) {
      // Redraw replacements from a fresh synthetic table with a per-VN
      // seed; this keeps the table size constant while the replacements'
      // structure is unrelated to the base.
      const net::RoutingTable replacement_pool =
          base_gen_.generate(vn_rng.next_u64());
      const auto pool = replacement_pool.routes();
      std::size_t added = 0;
      std::size_t cursor = vn_rng.next_below(pool.size());
      std::size_t scanned = 0;
      while (added < mutated && scanned < pool.size()) {
        const net::Route& candidate = pool[cursor];
        cursor = (cursor + 1) % pool.size();
        ++scanned;
        if (!table.contains(candidate.prefix)) {
          table.add(candidate);
          ++added;
        }
      }
      // If the pool could not supply enough unique prefixes (extremely
      // unlikely), the table is slightly smaller; Assumption 2 tolerance.
    }
    set.tables.push_back(std::move(table));
  }
  set.measured_alpha = measure_alpha(set.tables);
  return set;
}

TableSet CorrelatedTableSetGenerator::generate_with_alpha(
    std::size_t vn_count, double target_alpha, std::uint64_t seed) const {
  VR_REQUIRE(target_alpha >= 0.0 && target_alpha <= 1.0,
             "target_alpha must be in [0,1]");
  if (vn_count == 1) return generate(vn_count, 0.0, seed);

  // α is monotonically decreasing in the mutation fraction: bisect.
  double lo = 0.0;  // mutation 0 -> α = 1 (identical tables)
  double hi = 1.0;  // mutation 1 -> α near its floor (independent tables)
  std::optional<TableSet> best;
  double best_gap = std::numeric_limits<double>::infinity();
  for (unsigned step = 0; step < config_.max_bisection_steps; ++step) {
    const double mid = (lo + hi) / 2.0;
    TableSet candidate = generate(vn_count, mid, seed);
    const double measured = candidate.measured_alpha;
    const double gap = std::fabs(measured - target_alpha);
    if (gap < best_gap) {
      best = std::move(candidate);
      best_gap = gap;
    }
    if (best_gap <= config_.alpha_tolerance) break;
    if (measured > target_alpha) {
      lo = mid;  // too much overlap -> mutate more
    } else {
      hi = mid;
    }
  }
  return std::move(*best);
}

}  // namespace vr::virt
