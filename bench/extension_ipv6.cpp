// Extension: IPv6 scaling study. The paper models IPv4 (32-bit keys, 28
// pipeline stages); IPv6 edge tables reach /64, so the same architecture
// needs ~64 stages and carries deeper tries. This bench rebuilds the
// paper's per-engine numbers for a synthetic IPv6 edge table and compares
// them with the IPv4 baseline: logic power scales with the stage count,
// memory power with the (larger) trie, and the virtualization argument —
// leakage shared across K networks — is unchanged.
#include "bench_common.hpp"
#include "fpga/freq_model.hpp"
#include "fpga/xpe_tables.hpp"
#include "ipv6/ipv6_trie.hpp"
#include "netbase/table_gen.hpp"
#include "trie/memory_layout.hpp"

namespace {

struct EngineNumbers {
  std::size_t stages = 0;
  std::size_t nodes = 0;
  double memory_kb = 0.0;
  double freq_mhz = 0.0;
  double logic_mw = 0.0;
  double bram_mw = 0.0;
};

EngineNumbers evaluate(const std::vector<std::uint64_t>& level_bits,
                       std::size_t nodes, std::size_t stages) {
  using namespace vr;
  EngineNumbers out;
  out.stages = stages;
  out.nodes = nodes;
  std::vector<std::uint64_t> stage_bits = level_bits;
  stage_bits.resize(stages, 0);
  const fpga::StageBramPlan plan =
      fpga::plan_stage_bram(stage_bits, fpga::BramPolicy::kMixed);
  for (const std::uint64_t bits : stage_bits) {
    out.memory_kb += static_cast<double>(bits) / 1024.0;
  }
  fpga::DesignResources resources;
  resources.bram_halves = plan.total.halves();
  resources.max_stage_blocks36eq = plan.max_stage_blocks36eq;
  resources.pipelines = 1;
  const fpga::DeviceSpec device = fpga::DeviceSpec::xc6vlx760();
  const units::Megahertz freq = fpga::achievable_fmax_mhz(
      device, fpga::SpeedGrade::kMinus2, resources);
  out.freq_mhz = freq.value();
  out.logic_mw = fpga::XpeTables::logic_power_w(fpga::SpeedGrade::kMinus2,
                                                stages, freq)
                     .value() *
                 1e3;
  out.bram_mw =
      plan.total.power_w(fpga::SpeedGrade::kMinus2, freq).value() * 1e3;
  return out;
}

}  // namespace

int main() {
  using namespace vr;
  const trie::NodeEncoding enc;

  // IPv4 baseline engine (the paper's configuration).
  const net::SyntheticTableGenerator gen4(net::TableProfile::edge_default());
  const net::RoutingTable table4 = gen4.generate(1);
  const trie::UnibitTrie trie4 = trie::UnibitTrie(table4).leaf_pushed();
  const trie::TrieStats stats4 = trie::compute_stats(trie4);
  std::vector<std::uint64_t> bits4;
  for (std::size_t l = 0; l < stats4.nodes_per_level.size(); ++l) {
    bits4.push_back(stats4.internal_per_level[l] * enc.internal_word_bits() +
                    stats4.leaves_per_level[l] * enc.leaf_word_bits(1));
  }
  const EngineNumbers v4 = evaluate(bits4, stats4.total_nodes, 28);

  // IPv6 engine: same prefix count, /64-deep table, 64-stage pipeline.
  ipv6::TableProfile6 profile6;
  const ipv6::SyntheticTableGenerator6 gen6(profile6);
  const ipv6::RoutingTable6 table6 = gen6.generate(1);
  const ipv6::UnibitTrie6 trie6 = ipv6::UnibitTrie6(table6).leaf_pushed();
  const trie::TrieStats stats6 = trie6.stats();
  std::vector<std::uint64_t> bits6;
  for (std::size_t l = 0; l < stats6.nodes_per_level.size(); ++l) {
    bits6.push_back(stats6.internal_per_level[l] * enc.internal_word_bits() +
                    stats6.leaves_per_level[l] * enc.leaf_word_bits(1));
  }
  const EngineNumbers v6 = evaluate(bits6, stats6.total_nodes, 64);

  TextTable out("IPv4 vs IPv6 lookup engine (3725 prefixes, grade -2)");
  out.set_header({"quantity", "IPv4 (N=28)", "IPv6 (N=64)", "ratio"});
  auto row = [&](const char* name, double a, double b, int precision) {
    out.add_row({name, TextTable::num(a, precision),
                 TextTable::num(b, precision),
                 TextTable::num(b / a, 2)});
  };
  row("pipeline stages", static_cast<double>(v4.stages),
      static_cast<double>(v6.stages), 0);
  row("trie nodes", static_cast<double>(v4.nodes),
      static_cast<double>(v6.nodes), 0);
  row("memory Kb", v4.memory_kb, v6.memory_kb, 0);
  row("clock MHz", v4.freq_mhz, v6.freq_mhz, 1);
  row("logic mW", v4.logic_mw, v6.logic_mw, 2);
  row("BRAM mW", v4.bram_mw, v6.bram_mw, 2);
  row("dynamic mW", v4.logic_mw + v4.bram_mw, v6.logic_mw + v6.bram_mw, 2);
  vr::bench::emit(out);

  std::cout << "The IPv6 engine needs ~2.3x the stages and more trie\n"
               "memory, but the dominant cost is still the device's\n"
               "leakage -- so virtualization's K-fold static-power saving\n"
               "carries over unchanged to IPv6 deployments.\n";
  return 0;
}
