// Seeded property tests over the placement controller, parametrized over
// all three policies × fleet sizes {100, 1000} (the acceptance matrix of
// the competitive-ratio study). Each run replays a fixed request stream
// and asserts the structural invariants that must survive any policy:
//
//   * capacity: every occupied device's shape passes the oracle's
//     feasibility check (FitReport, co-location cap, SLA floors);
//   * conservation: accepted - departed VNs are exactly the residents;
//   * accounting: the incremental fleet-watts tracker matches a from-
//     scratch recomputation over the group index;
//   * determinism: the same (policy, seed) replays bit-identically;
//   * bounds: online fleet watts never beat the fractional lower bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "fpga/device.hpp"
#include "placement/controller.hpp"
#include "placement/offline.hpp"

namespace vr::placement {
namespace {

struct Case {
  PolicyKind policy;
  std::size_t fleet_size;
};

class PlacementInvariantsTest : public ::testing::TestWithParam<Case> {
 protected:
  // Shared across all parametrizations: the oracle is a deterministic
  // pure cache, and sharing it means each distinct shape's trie is built
  // once for the whole suite.
  static CostOracle& oracle() {
    static CostOracle instance{fpga::DeviceSpec::xc6vlx760()};
    return instance;
  }

  static RequestStreamConfig stream_config(std::size_t fleet_size) {
    RequestStreamConfig config;
    config.seed = 42;
    // Short holding at the small fleet saturates it (admission pressure);
    // the large fleet stays partly empty (growth phase). Both regimes are
    // covered without a million-request run.
    config.mean_holding_ticks = fleet_size <= 100 ? 1000 : 3000;
    return config;
  }

  static constexpr std::uint64_t kRequests = 4000;

  static ControllerConfig controller_config(const Case& c) {
    ControllerConfig config;
    config.policy = c.policy;
    config.fleet_size = c.fleet_size;
    config.keep_trace = true;
    return config;
  }
};

TEST_P(PlacementInvariantsTest, StructuralInvariantsHoldAfterTheRun) {
  const Case c = GetParam();
  PlacementController controller(&oracle(), controller_config(c));
  RequestStream stream(stream_config(c.fleet_size));
  const ControllerResult result = controller.run(stream, kRequests);
  const Fleet& fleet = controller.fleet();

  // Bookkeeping closes: every request was either accepted or rejected,
  // infeasible rejections are a subset, and the trace saw all of them.
  EXPECT_EQ(result.requests, kRequests);
  EXPECT_EQ(result.accepted + result.rejected, result.requests);
  EXPECT_LE(result.infeasible, result.rejected);
  ASSERT_EQ(result.trace.size(), kRequests);
  std::uint64_t trace_accepted = 0;
  for (const PlacementRecord& record : result.trace) {
    if (record.accepted) {
      ++trace_accepted;
      EXPECT_LT(record.device, c.fleet_size);
    }
  }
  EXPECT_EQ(trace_accepted, result.accepted);

  // VN conservation: accepted minus departed VNs are exactly the
  // residents, and each resident is locatable.
  const std::vector<PlacedVn> residents = fleet.resident_vns();
  EXPECT_EQ(result.accepted - result.departures, residents.size());
  for (const PlacedVn& vn : residents) {
    EXPECT_TRUE(fleet.contains(vn.request_id));
  }

  // Index coherence: the group index partitions exactly the active
  // devices, shapes match a per-device recomputation, and peak/current
  // device counts are consistent.
  EXPECT_EQ(result.devices_active, fleet.active_devices());
  EXPECT_GE(result.peak_devices_active, result.devices_active);
  EXPECT_LE(result.peak_devices_active, c.fleet_size);
  std::set<std::size_t> grouped;
  for (const auto& [shape, devices] : fleet.groups()) {
    for (const std::size_t device : devices) {
      EXPECT_TRUE(grouped.insert(device).second);
      EXPECT_EQ(fleet.shape_of(device), shape);
    }
    // Capacity is never exceeded: every occupied shape is feasible.
    EXPECT_TRUE(oracle().feasible(shape))
        << to_string(shape.mode) << " K=" << shape.vn_count
        << " bucket=" << shape.max_bucket << " mu_q=" << shape.mu_total_q;
    // SLA floors: gold tenants never sit on a time-shared engine.
    if (shape.mode == DeviceMode::kTimeShared) {
      for (const std::size_t device : devices) {
        for (const auto& [id, vn] : fleet.device(device).vns) {
          EXPECT_NE(vn.sla, SlaClass::kGold) << "request " << id;
        }
      }
    }
  }
  EXPECT_EQ(grouped.size(), fleet.active_devices());

  // Accounting: the incremental watts tracker never drifts from a
  // from-scratch recomputation over the group index.
  const double recomputed = controller.recomputed_fleet_w();
  EXPECT_NEAR(result.fleet_w, recomputed,
              1e-6 * std::max(1.0, recomputed));
  EXPECT_GE(result.watt_ticks, 0.0);
  if (result.accepted > 0) {
    EXPECT_GT(result.watt_ticks, 0.0);
  }
}

TEST_P(PlacementInvariantsTest, ReplayFromTheSameSeedIsBitIdentical) {
  const Case c = GetParam();
  auto run_once = [&] {
    PlacementController controller(&oracle(), controller_config(c));
    RequestStream stream(stream_config(c.fleet_size));
    return controller.run(stream, kRequests);
  };
  const ControllerResult a = run_once();
  const ControllerResult b = run_once();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.infeasible, b.infeasible);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.devices_active, b.devices_active);
  EXPECT_EQ(a.peak_devices_active, b.peak_devices_active);
  // Bit-identical, not approximately equal: every float the controller
  // touches flows through deterministic std::map/std::set iteration.
  EXPECT_EQ(a.fleet_w, b.fleet_w);
  EXPECT_EQ(a.watt_ticks, b.watt_ticks);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].request_id, b.trace[i].request_id);
    EXPECT_EQ(a.trace[i].accepted, b.trace[i].accepted);
    EXPECT_EQ(a.trace[i].device, b.trace[i].device);
    EXPECT_EQ(a.trace[i].mode, b.trace[i].mode);
  }
}

TEST_P(PlacementInvariantsTest, OnlineNeverBeatsTheFractionalLowerBound) {
  const Case c = GetParam();
  PlacementController controller(&oracle(), controller_config(c));
  RequestStream stream(stream_config(c.fleet_size));
  const ControllerResult result = controller.run(stream, kRequests);
  const std::vector<PlacedVn> residents = controller.fleet().resident_vns();
  if (residents.empty()) GTEST_SKIP() << "no residents to bound";
  const OfflineBound bound = offline_bound(residents, oracle());
  // The relaxation drops all packing constraints, so OPT — and any
  // online run — can only cost at least as much.
  EXPECT_GT(bound.fractional_lower_w, 0.0);
  EXPECT_GE(result.fleet_w, bound.fractional_lower_w - 1e-9);
  // The greedy packing is a feasible integral solution, so it can never
  // beat the relaxation either.
  EXPECT_GE(bound.greedy_w, bound.fractional_lower_w - 1e-9);
}

TEST_P(PlacementInvariantsTest, StreamAndVectorRunsAgree) {
  const Case c = GetParam();
  // Only at the small fleet — this doubles the run count and the large
  // fleet adds no coverage for the equivalence itself.
  if (c.fleet_size > 100) GTEST_SKIP() << "covered at fleet 100";
  PlacementController from_stream(&oracle(), controller_config(c));
  RequestStream stream(stream_config(c.fleet_size));
  const ControllerResult a = from_stream.run(stream, kRequests);
  PlacementController from_vector(&oracle(), controller_config(c));
  const ControllerResult b = from_vector.run(
      generate_requests(stream_config(c.fleet_size), kRequests));
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.fleet_w, b.fleet_w);
  EXPECT_EQ(a.watt_ticks, b.watt_ticks);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndFleets, PlacementInvariantsTest,
    ::testing::Values(Case{PolicyKind::kFirstFit, 100},
                      Case{PolicyKind::kFirstFit, 1000},
                      Case{PolicyKind::kBestFitWatts, 100},
                      Case{PolicyKind::kBestFitWatts, 1000},
                      Case{PolicyKind::kExpCost, 100},
                      Case{PolicyKind::kExpCost, 1000}),
    [](const ::testing::TestParamInfo<Case>& param) {
      std::string name = to_string(param.param.policy);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_fleet" + std::to_string(param.param.fleet_size);
    });

}  // namespace
}  // namespace vr::placement
