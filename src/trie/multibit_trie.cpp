#include "trie/multibit_trie.hpp"

#include "common/error.hpp"

namespace vr::trie {

MultibitTrie::MultibitTrie(const net::RoutingTable& table, unsigned stride)
    : stride_(stride) {
  VR_REQUIRE(stride == 1 || stride == 2 || stride == 4 || stride == 8,
             "stride must be 1, 2, 4 or 8");
  allocate_node(0);  // root
  for (const net::Route& route : table.routes()) {
    insert(route);
  }
}

NodeIndex MultibitTrie::allocate_node(std::size_t level) {
  const NodeIndex index = checked_node_index(nodes_.size(), "multibit trie");
  // narrow-ok: level <= 32 / stride (IPv4 depth)
  nodes_.push_back(static_cast<std::uint8_t>(level));
  entries_.insert(entries_.end(), entries_per_node(), Entry{});
  if (level_node_counts_.size() <= level) {
    level_node_counts_.resize(level + 1, 0);
  }
  ++level_node_counts_[level];
  return index;
}

void MultibitTrie::insert(const net::Route& route) {
  NodeIndex current = 0;
  unsigned consumed = 0;
  const unsigned length = route.prefix.length();
  const std::uint32_t addr = route.prefix.address().value();

  // Descend full-stride levels.
  while (length - consumed > stride_) {
    const std::size_t slot =
        (addr >> (32u - consumed - stride_)) & ((1u << stride_) - 1u);
    Entry& e = entry(current, slot);
    if (e.child == kNullNode) {
      const std::size_t level = consumed / stride_ + 1;
      const NodeIndex fresh = allocate_node(level);
      entry(current, slot).child = fresh;  // re-fetch after realloc
    }
    current = entry(current, slot).child;
    consumed += stride_;
  }

  // Controlled prefix expansion of the last (partial) stride: the route
  // covers 2^(stride - r) entries; longer original prefixes win ties.
  const unsigned r = length - consumed;  // 0 < r <= stride unless length==0
  if (length == 0) {
    // Default route: covers every entry of the root.
    for (std::size_t slot = 0; slot < entries_per_node(); ++slot) {
      Entry& e = entry(0, slot);
      if (e.route_len == 0 && e.next_hop == net::kNoRoute) {
        e.next_hop = route.next_hop;
      }
    }
    return;
  }
  const std::size_t base =
      r == 0 ? 0
             : ((addr >> (32u - consumed - stride_)) &
                ((1u << stride_) - 1u) & ~((1u << (stride_ - r)) - 1u));
  const std::size_t span = std::size_t{1} << (stride_ - r);
  for (std::size_t i = 0; i < span; ++i) {
    Entry& e = entry(current, base + i);
    if (e.next_hop == net::kNoRoute || e.route_len <= length) {
      e.next_hop = route.next_hop;
      // narrow-ok: an IPv4 prefix length is at most 32
      e.route_len = static_cast<std::uint8_t>(length);
    }
  }
}

std::optional<net::NextHop> MultibitTrie::lookup(net::Ipv4 addr) const {
  std::optional<net::NextHop> best;
  NodeIndex current = 0;
  for (unsigned consumed = 0; consumed < 32; consumed += stride_) {
    const std::size_t slot =
        (addr.value() >> (32u - consumed - stride_)) &
        ((1u << stride_) - 1u);
    const Entry& e = entry(current, slot);
    if (e.next_hop != net::kNoRoute) best = e.next_hop;
    if (e.child == kNullNode) break;
    current = e.child;
  }
  return best;
}

std::vector<std::uint64_t> MultibitTrie::level_memory_bits(
    unsigned pointer_bits, unsigned nhi_bits) const {
  std::vector<std::uint64_t> out;
  out.reserve(level_node_counts_.size());
  for (const std::size_t count : level_node_counts_) {
    out.push_back(static_cast<std::uint64_t>(count) * entries_per_node() *
                  (pointer_bits + nhi_bits));
  }
  return out;
}

}  // namespace vr::trie
