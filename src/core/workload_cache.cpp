#include "core/workload_cache.hpp"

#include <cstdio>
#include <utility>

#include "netbase/routing_table.hpp"
#include "obs/timer.hpp"
#include "trie/flat_trie.hpp"
#include "trie/unibit_trie.hpp"
#include "virt/merged_trie.hpp"

namespace vr::core {

namespace {

// Defaults sized so every paper-profile regeneration fits cold (a full
// Figs. 4–8 run realizes well under a hundred MiB of workloads) while a
// long multi-scenario sweep still converges to a bounded resident set.
constexpr std::uint64_t kDefaultMaxResidentBytes =
    std::uint64_t{512} * 1024 * 1024;
constexpr std::size_t kDefaultMaxEntries = 4096;

void append_double(std::string* out, double value) {
  char buffer[48];
  // Hexfloat round-trips exactly; "%a" output is locale-independent.
  std::snprintf(buffer, sizeof buffer, "%a,", value);
  *out += buffer;
}

void append_size(std::string* out, std::uint64_t value) {
  *out += std::to_string(value);
  *out += ',';
}

}  // namespace

std::string WorkloadCache::key(const Scenario& scenario, bool keep_tables) {
  std::string key;
  key.reserve(160);
  append_size(&key, static_cast<std::uint64_t>(scenario.scheme));
  append_size(&key, scenario.vn_count);
  append_size(&key, scenario.stages);
  append_size(&key, scenario.seed);
  append_double(&key, scenario.alpha);
  append_size(&key, static_cast<std::uint64_t>(scenario.merged_source));
  append_size(&key, static_cast<std::uint64_t>(scenario.merged_rule));
  append_size(&key, scenario.leaf_push ? 1 : 0);
  append_double(&key, scenario.table_size_spread);
  append_size(&key, keep_tables ? 1 : 0);
  const net::TableProfile& profile = scenario.table_profile;
  append_size(&key, profile.prefix_count);
  append_size(&key, profile.provider_blocks);
  append_size(&key, profile.provider_block_length);
  append_size(&key, profile.min_length);
  append_size(&key, profile.density_span);
  append_double(&key, profile.nested_fraction);
  append_size(&key, profile.next_hop_count);
  for (const double weight : profile.length_weights) {
    append_double(&key, weight);
  }
  return key;
}

std::uint64_t WorkloadCache::approx_bytes(const Workload& workload) {
  std::uint64_t bytes = sizeof(Workload);
  const auto engine_bytes = [](const power::EngineSpec& engine) {
    return sizeof(power::EngineSpec) +
           engine.stage_bits.size() * sizeof(std::uint64_t);
  };
  bytes += engine_bytes(workload.per_vn_engine);
  bytes += engine_bytes(workload.merged_engine);
  for (const power::EngineSpec& engine : workload.heterogeneous_engines) {
    bytes += engine_bytes(engine);
  }
  for (const net::RoutingTable& table : workload.tables) {
    bytes += sizeof(net::RoutingTable) + table.size() * sizeof(net::Route);
  }
  for (const trie::UnibitTrie& trie : workload.tries) {
    // Node vector + level offsets + the flat SoA mirror (left/right index
    // arrays and the per-VN next-hop pool).
    bytes += sizeof(trie::UnibitTrie) +
             trie.node_count() *
                 (sizeof(trie::TrieNode) + 2 * sizeof(trie::NodeIndex) +
                  trie.flat().vn_count() * sizeof(net::NextHop)) +
             trie.level_offsets().size() * sizeof(std::size_t);
  }
  if (workload.merged_trie.has_value()) {
    const virt::MergedTrie& merged = *workload.merged_trie;
    bytes += merged.node_count() *
             (sizeof(virt::MergedNode) + 2 * sizeof(trie::NodeIndex) +
              merged.vn_count() * sizeof(net::NextHop));
  }
  return bytes;
}

WorkloadCache::WorkloadCache(obs::Registry* registry, Builder builder)
    : builder_(std::move(builder)),
      max_resident_bytes_(kDefaultMaxResidentBytes),
      max_entries_(kDefaultMaxEntries) {
  if (registry != nullptr) {
    hits_ = &registry->counter("workload_cache.hits");
    misses_ = &registry->counter("workload_cache.misses");
    evictions_ = &registry->counter("workload_cache.evictions");
    build_ns_ = &registry->histogram("workload_cache.build_ns");
    resident_bytes_gauge_ = &registry->gauge("workload_cache.resident_bytes");
    entries_gauge_ = &registry->gauge("workload_cache.entries");
  } else {
    hits_ = &own_hits_;
    misses_ = &own_misses_;
    evictions_ = &own_evictions_;
    build_ns_ = &own_build_ns_;
    resident_bytes_gauge_ = &own_resident_bytes_gauge_;
    entries_gauge_ = &own_entries_gauge_;
  }
}

std::shared_ptr<const Workload> WorkloadCache::realize(
    const Scenario& scenario, bool keep_tables) {
  const std::string cache_key = key(scenario, keep_tables);
  std::promise<std::shared_ptr<const Workload>> promise;
  Entry entry;
  bool builder = false;
  std::uint64_t my_generation = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(cache_key);
    if (it != entries_.end()) {
      hits_->add(1);
      if (it->second.ready) {
        // Touch: most recently used entries evict last.
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      }
      entry = it->second.future;
    } else {
      misses_->add(1);
      entry = promise.get_future().share();
      Slot slot;
      slot.future = entry;
      slot.generation = my_generation = ++next_generation_;
      entries_.emplace(cache_key, std::move(slot));
      builder = true;
    }
  }
  if (!builder) return entry.get();
  try {
    std::shared_ptr<const Workload> workload;
    {
      const obs::ScopedTimer timer(*build_ns_);
      workload = builder_
                     ? builder_(scenario, keep_tables)
                     : std::make_shared<const Workload>(
                           realize_workload(scenario, keep_tables));
    }
    promise.set_value(workload);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      complete_locked(cache_key, my_generation, *workload);
    }
    return workload;
  } catch (...) {
    // Failed builds must not poison the cache permanently: propagate the
    // exception to every waiter of this entry, then drop it — but only if
    // the slot is still ours. clear() followed by a retry may have
    // re-installed the key for a fresh build; unconditionally erasing here
    // would tear down the retry's slot (poisoning its waiters' dedup and
    // corrupting the byte accounting once it completes).
    promise.set_exception(std::current_exception());
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = entries_.find(cache_key);
      if (it != entries_.end() && it->second.generation == my_generation) {
        entries_.erase(it);
      }
    }
    throw;
  }
}

void WorkloadCache::complete_locked(const std::string& cache_key,
                                    std::uint64_t generation,
                                    const Workload& workload) {
  const auto it = entries_.find(cache_key);
  if (it == entries_.end()) return;  // clear() raced the build
  // clear() + a re-request may have installed a fresh slot under this key
  // while our build was in flight; charging our bytes against the new
  // slot would double-count once the new build also completes.
  if (it->second.generation != generation || it->second.ready) return;
  it->second.ready = true;
  it->second.bytes = approx_bytes(workload);
  lru_.push_front(cache_key);
  it->second.lru_it = lru_.begin();
  resident_bytes_ += it->second.bytes;
  ++ready_entries_;
  enforce_budget_locked();
  resident_bytes_gauge_->set(static_cast<std::int64_t>(resident_bytes_));
  entries_gauge_->set(static_cast<std::int64_t>(ready_entries_));
}

void WorkloadCache::enforce_budget_locked() {
  while ((resident_bytes_ > max_resident_bytes_ ||
          ready_entries_ > max_entries_) &&
         !lru_.empty()) {
    const std::string& victim = lru_.back();
    const auto it = entries_.find(victim);
    if (it != entries_.end()) {
      resident_bytes_ -= it->second.bytes;
      --ready_entries_;
      entries_.erase(it);
    }
    lru_.pop_back();
    evictions_->add(1);
  }
}

WorkloadCache::Stats WorkloadCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.evictions = evictions_->value();
  stats.resident_bytes = resident_bytes_;
  stats.entries = ready_entries_;
  return stats;
}

void WorkloadCache::set_budget(std::uint64_t max_resident_bytes,
                               std::size_t max_entries) {
  const std::lock_guard<std::mutex> lock(mu_);
  max_resident_bytes_ = max_resident_bytes;
  max_entries_ = max_entries;
  enforce_budget_locked();
  resident_bytes_gauge_->set(static_cast<std::int64_t>(resident_bytes_));
  entries_gauge_->set(static_cast<std::int64_t>(ready_entries_));
}

std::uint64_t WorkloadCache::max_resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_resident_bytes_;
}

std::size_t WorkloadCache::max_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_entries_;
}

void WorkloadCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  ready_entries_ = 0;
  hits_->reset();
  misses_->reset();
  evictions_->reset();
  build_ns_->reset();
  resident_bytes_gauge_->reset();
  entries_gauge_->reset();
}

WorkloadCache& WorkloadCache::global() {
  static WorkloadCache cache(&obs::Registry::global());
  return cache;
}

std::shared_ptr<const Workload> realize_workload_cached(
    const Scenario& scenario, bool keep_tables) {
  return WorkloadCache::global().realize(scenario, keep_tables);
}

}  // namespace vr::core
