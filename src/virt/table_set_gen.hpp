// Correlated table-set generation: produces K per-VN routing tables whose
// structural merge realizes a requested merging efficiency α.
//
// The paper's merged experiments are parameterized purely by α (20 % and
// 80 %); real per-VN tables with those overlaps are not available, so we
// derive K tables from a common base table by mutating a fraction of each
// table's prefixes. More mutation => less node sharing => lower α. The
// mutation fraction realizing a target α is found by bisection on the
// measured effective α of the actual structural merge.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/table_gen.hpp"
#include "virt/merged_trie.hpp"

namespace vr::virt {

/// A generated set of per-VN tables plus the realized overlap.
struct TableSet {
  std::vector<net::RoutingTable> tables;
  /// Effective α measured on the leaf-pushed structural merge (the form the
  /// pipeline actually deploys).
  double measured_alpha = 1.0;
  /// Mutation fraction that produced the set.
  double mutation_fraction = 0.0;
};

/// Generator configuration.
struct TableSetConfig {
  net::TableProfile profile = net::TableProfile::edge_default();
  /// Tolerance on |measured α − target α| for generate_with_alpha.
  double alpha_tolerance = 0.03;
  /// Bisection iteration cap.
  unsigned max_bisection_steps = 12;
  /// Whether α is measured on leaf-pushed tries (the deployed form) or the
  /// raw tries.
  bool leaf_push = true;
};

class CorrelatedTableSetGenerator {
 public:
  explicit CorrelatedTableSetGenerator(TableSetConfig config);

  /// K tables, each sharing (1 − mutation_fraction) of its prefixes with a
  /// common base table; mutated prefixes are redrawn per VN. Deterministic
  /// in (config, vn_count, mutation_fraction, seed).
  [[nodiscard]] TableSet generate(std::size_t vn_count,
                                  double mutation_fraction,
                                  std::uint64_t seed) const;

  /// Bisects the mutation fraction until the measured effective α of the
  /// structural merge is within alpha_tolerance of `target_alpha` (or the
  /// step cap is reached; the best candidate is returned either way).
  [[nodiscard]] TableSet generate_with_alpha(std::size_t vn_count,
                                             double target_alpha,
                                             std::uint64_t seed) const;

  /// Measures the effective α of an arbitrary table set (utility shared
  /// with tests and benches).
  [[nodiscard]] double measure_alpha(
      const std::vector<net::RoutingTable>& tables) const;

  [[nodiscard]] const TableSetConfig& config() const noexcept {
    return config_;
  }

 private:
  TableSetConfig config_;
  net::SyntheticTableGenerator base_gen_;
};

}  // namespace vr::virt
