file(REMOVE_RECURSE
  "CMakeFiles/vr_common.dir/error.cpp.o"
  "CMakeFiles/vr_common.dir/error.cpp.o.d"
  "CMakeFiles/vr_common.dir/rng.cpp.o"
  "CMakeFiles/vr_common.dir/rng.cpp.o.d"
  "CMakeFiles/vr_common.dir/stats.cpp.o"
  "CMakeFiles/vr_common.dir/stats.cpp.o.d"
  "CMakeFiles/vr_common.dir/table.cpp.o"
  "CMakeFiles/vr_common.dir/table.cpp.o.d"
  "libvr_common.a"
  "libvr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
