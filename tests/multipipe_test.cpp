#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "multipipe/multipipe_power.hpp"
#include "multipipe/partition.hpp"
#include "netbase/table_gen.hpp"
#include "trie/trie_stats.hpp"

namespace vr::multipipe {
namespace {

using net::Ipv4;
using net::RoutingTable;
using trie::UnibitTrie;

UnibitTrie make_trie(std::uint64_t seed, std::size_t prefixes = 800,
                     bool leaf_push = true) {
  net::TableProfile profile;
  profile.prefix_count = prefixes;
  const RoutingTable table =
      net::SyntheticTableGenerator(profile).generate(seed);
  UnibitTrie trie(table);
  return leaf_push ? trie.leaf_pushed() : trie;
}

// --------------------------------------------------------------- lookup --

class PartitionLookupProperty
    : public ::testing::TestWithParam<unsigned /*split level*/> {};

TEST_P(PartitionLookupProperty, LookupMatchesTrie) {
  const UnibitTrie trie = make_trie(GetParam());
  PartitionConfig config;
  config.split_level = GetParam() % 12 + 2;
  config.pipeline_count = 4;
  const PartitionedTrie partition(trie, config);
  Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(partition.lookup(addr), trie.lookup(addr));
  }
}

TEST_P(PartitionLookupProperty, NonPushedTrieAlsoMatches) {
  const UnibitTrie trie = make_trie(GetParam() + 40, 600, false);
  PartitionConfig config;
  config.split_level = 8;
  config.pipeline_count = 3;
  const PartitionedTrie partition(trie, config);
  Rng rng(GetParam() ^ 0x55);
  for (int i = 0; i < 2000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(partition.lookup(addr), trie.lookup(addr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionLookupProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ------------------------------------------------------------ structure --

TEST(PartitionTest, DepthBoundShrinksWithSplitLevel) {
  const UnibitTrie trie = make_trie(1);
  std::size_t prev = trie.level_count() + 1;
  for (const unsigned s : {2u, 6u, 10u, 14u}) {
    PartitionConfig config;
    config.split_level = s;
    config.pipeline_count = 4;
    const PartitionedTrie partition(trie, config);
    EXPECT_LE(partition.pipeline_depth(), prev);
    EXPECT_LE(partition.pipeline_depth(), trie.level_count() - s + 1);
    prev = partition.pipeline_depth();
  }
}

TEST(PartitionTest, AllSubtrieNodesAssignedExactlyOnce) {
  const UnibitTrie trie = make_trie(2);
  PartitionConfig config;
  config.split_level = 8;
  config.pipeline_count = 4;
  const PartitionedTrie partition(trie, config);
  std::size_t assigned = 0;
  for (std::size_t p = 0; p < config.pipeline_count; ++p) {
    assigned += partition.pipeline_nodes(p);
  }
  // Nodes above the split live in the index, not the pipelines.
  const trie::TrieStats stats = trie::compute_stats(trie);
  std::size_t below_split = 0;
  for (std::size_t l = config.split_level; l < stats.nodes_per_level.size();
       ++l) {
    below_split += stats.nodes_per_level[l];
  }
  EXPECT_EQ(assigned, below_split);
}

TEST(PartitionTest, BalanceFactorReasonable) {
  const UnibitTrie trie = make_trie(3, 2000);
  PartitionConfig config;
  config.split_level = 10;
  config.pipeline_count = 8;
  const PartitionedTrie partition(trie, config);
  EXPECT_GE(partition.balance_factor(), 1.0);
  EXPECT_LE(partition.balance_factor(), 1.5);  // greedy largest-first
}

TEST(PartitionTest, IndexBitsAccountPipelineIdPointerNhi) {
  const UnibitTrie trie = make_trie(4);
  PartitionConfig config;
  config.split_level = 6;
  config.pipeline_count = 4;  // 2 id bits
  const PartitionedTrie partition(trie, config);
  EXPECT_EQ(partition.index_entries(), 64u);
  EXPECT_EQ(partition.index_bits(), 64u * (2u + 18u + 8u));
}

TEST(PartitionTest, DeepSplitYieldsIndexOnlyHits) {
  const UnibitTrie trie = make_trie(5, 300);
  PartitionConfig config;
  config.split_level = 16;  // deeper than many paths
  config.pipeline_count = 2;
  const PartitionedTrie partition(trie, config);
  EXPECT_GT(partition.index_only_fraction(), 0.0);
}

TEST(PartitionTest, RejectsBadConfig) {
  const UnibitTrie trie = make_trie(6, 100);
  EXPECT_DEATH(PartitionedTrie(trie, {0, 2}), "split_level");
  EXPECT_DEATH(PartitionedTrie(trie, {17, 2}), "split_level");
  EXPECT_DEATH(PartitionedTrie(trie, {8, 0}), "pipeline");
}

// ---------------------------------------------------------------- power --

class MultipipePowerTest : public ::testing::Test {
 protected:
  fpga::DeviceSpec device_ = fpga::DeviceSpec::xc6vlx760();
};

TEST_F(MultipipePowerTest, DeeperSplitCutsLogicPower) {
  const UnibitTrie trie = make_trie(7, 3725);
  MultipipeReport prev;
  bool first = true;
  for (const unsigned s : {2u, 6u, 10u}) {
    PartitionConfig config;
    config.split_level = s;
    config.pipeline_count = 4;
    const PartitionedTrie partition(trie, config);
    MultipipeModelOptions options;
    const MultipipeReport report =
        evaluate_multipipe(partition, device_, options);
    if (!first) {
      EXPECT_LT(report.pipeline_depth, prev.pipeline_depth);
    }
    first = false;
    prev = report;
  }
}

TEST_F(MultipipePowerTest, MorePipelinesRaiseThroughput) {
  const UnibitTrie trie = make_trie(8, 2000);
  units::Gbps prev_gbps{0.0};
  for (const std::size_t p : {1ul, 2ul, 4ul}) {
    PartitionConfig config;
    config.split_level = 8;
    config.pipeline_count = p;
    const PartitionedTrie partition(trie, config);
    const MultipipeReport report = evaluate_multipipe(partition, device_);
    EXPECT_GT(report.throughput_gbps, prev_gbps);
    prev_gbps = report.throughput_gbps;
  }
}

TEST_F(MultipipePowerTest, BeatsLinearPipelineOnEfficiency) {
  // The green-router claim ([7]/[8]): depth-bounded multi-pipeline gives
  // better mW/Gbps than the 28-stage linear pipeline at the same load.
  const UnibitTrie trie = make_trie(9, 3725);
  PartitionConfig config;
  config.split_level = 12;
  config.pipeline_count = 8;
  const PartitionedTrie multi(trie, config);
  const MultipipeReport multi_report = evaluate_multipipe(multi, device_);

  // Linear baseline: same trie in one 28-stage pipeline at full load.
  PartitionConfig linear_config;
  linear_config.split_level = 1;
  linear_config.pipeline_count = 1;
  const PartitionedTrie linear(trie, linear_config);
  const MultipipeReport linear_report =
      evaluate_multipipe(linear, device_);

  EXPECT_LT(multi_report.mw_per_gbps(), linear_report.mw_per_gbps());
}

TEST_F(MultipipePowerTest, LoadScalesDynamicOnly) {
  const UnibitTrie trie = make_trie(10, 1000);
  PartitionConfig config;
  config.split_level = 8;
  config.pipeline_count = 4;
  const PartitionedTrie partition(trie, config);
  MultipipeModelOptions half;
  half.load = 0.5;
  const MultipipeReport full = evaluate_multipipe(partition, device_);
  const MultipipeReport halved = evaluate_multipipe(partition, device_, half);
  EXPECT_NEAR(halved.logic_w.value(), 0.5 * full.logic_w.value(), 1e-12);
  EXPECT_NEAR(halved.memory_w.value(), 0.5 * full.memory_w.value(), 1e-12);
  EXPECT_DOUBLE_EQ(halved.static_w.value(), full.static_w.value());
}

}  // namespace
}  // namespace vr::multipipe
