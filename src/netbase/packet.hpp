// Byte-level IPv4 packets: header serialization, Internet checksum, and
// the RFC 1624 incremental checksum update used by the header-editing
// stage of the full router data plane (paper Sec. VI-A names "parsing,
// lookup, editing, scheduling" as the complete-router stages).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/ipv4.hpp"

namespace vr::net {

/// Minimal IPv4 header (no options, IHL = 5).
struct Ipv4Header {
  static constexpr std::size_t kSize = 20;

  std::uint8_t dscp = 0;          ///< DiffServ code point (QoS class)
  std::uint16_t total_length = kSize;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 17;     ///< UDP by default
  std::uint16_t checksum = 0;     ///< as stored on the wire
  Ipv4 source;
  Ipv4 destination;

  /// Serializes to 20 network-order bytes with the given checksum field.
  [[nodiscard]] std::array<std::uint8_t, kSize> serialize() const;

  /// Computes the correct header checksum for the current fields
  /// (independently of the `checksum` member).
  [[nodiscard]] std::uint16_t compute_checksum() const;

  /// Serializes with a freshly computed checksum.
  [[nodiscard]] std::array<std::uint8_t, kSize> serialize_with_checksum()
      const;

  /// Parses 20+ bytes; nullopt if the version/IHL are unsupported or the
  /// buffer is short. Does NOT verify the checksum (see verify_checksum).
  static std::optional<Ipv4Header> parse(
      std::span<const std::uint8_t> bytes);

  /// True if the stored checksum matches the header fields.
  [[nodiscard]] bool verify_checksum() const {
    return checksum == compute_checksum();
  }

  /// Decrements TTL and applies the RFC 1624 incremental checksum update
  /// (the hardware-friendly editing operation: no full recompute).
  /// Returns false (and leaves the header untouched) if TTL is already 0.
  bool decrement_ttl();
};

/// Internet checksum (RFC 1071) over a byte span, as used by IPv4.
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> bytes);

/// A wire packet: header plus an opaque payload length (contents are not
/// modelled; the data plane only needs sizes).
struct WirePacket {
  Ipv4Header header;
  std::uint16_t payload_bytes = 20;  ///< 40 B minimum packet total

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return Ipv4Header::kSize + payload_bytes;
  }
};

}  // namespace vr::net
