#include "virt/updatable_merged.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::virt {

UpdatableMergedTrie::UpdatableMergedTrie(
    std::span<const net::RoutingTable* const> tables)
    : vn_count_(tables.size()) {
  VR_REQUIRE(!tables.empty() && tables.size() <= 64,
             "updatable merged trie supports 1..64 virtual networks");
  route_counts_.assign(vn_count_, 0);
  present_counts_.assign(vn_count_, 0);

  // Root: present for every VN (every trie has a root).
  nodes_.push_back(Node{});
  next_hops_.assign(vn_count_, net::kNoRoute);
  subtree_routes_.assign(vn_count_, 0);
  live_nodes_ = 1;
  for (net::VnId v = 0; v < vn_count_; ++v) {
    nodes_[0].presence |= std::uint64_t{1} << v;
    present_counts_[v] = 1;
  }

  for (net::VnId v = 0; v < vn_count_; ++v) {
    VR_REQUIRE(tables[v] != nullptr, "null routing table");
    for (const net::Route& route : tables[v]->routes()) {
      announce(v, route);
    }
  }
}

trie::NodeIndex UpdatableMergedTrie::allocate() {
  trie::NodeIndex index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
    nodes_[index] = Node{};
    std::fill_n(next_hops_.begin() +
                    static_cast<std::ptrdiff_t>(index * vn_count_),
                vn_count_, net::kNoRoute);
    std::fill_n(subtree_routes_.begin() +
                    static_cast<std::ptrdiff_t>(index * vn_count_),
                vn_count_, std::uint16_t{0});
  } else {
    index = static_cast<trie::NodeIndex>(nodes_.size());
    nodes_.push_back(Node{});
    next_hops_.insert(next_hops_.end(), vn_count_, net::kNoRoute);
    subtree_routes_.insert(subtree_routes_.end(), vn_count_, 0);
  }
  ++live_nodes_;
  return index;
}

void UpdatableMergedTrie::release(trie::NodeIndex index) {
  free_list_.push_back(index);
  --live_nodes_;
}

trie::UpdateCost UpdatableMergedTrie::apply(net::VnId vn,
                                            const net::RouteUpdate& update) {
  VR_REQUIRE(vn < vn_count_, "VNID out of range");
  switch (update.kind) {
    case net::RouteUpdate::Kind::kAnnounce:
      return do_announce(vn, update.route);
    case net::RouteUpdate::Kind::kWithdraw:
      return do_withdraw(vn, update.route.prefix);
  }
  return {};
}

trie::UpdateCost UpdatableMergedTrie::do_announce(net::VnId vn,
                                                  const net::Route& route) {
  VR_REQUIRE(route.next_hop != net::kNoRoute,
             "announce requires a real next hop");
  // If the route already exists with the same hop, no-op (keeps subtree
  // counts exact).
  trie::UpdateCost cost;
  const std::uint64_t vbit = std::uint64_t{1} << vn;

  // Walk/extend the path.
  std::vector<trie::NodeIndex> path{0};
  trie::NodeIndex current = 0;
  for (unsigned depth = 0; depth < route.prefix.length(); ++depth) {
    const bool go_right = route.prefix.bit(depth);
    trie::NodeIndex child =
        go_right ? nodes_[current].right : nodes_[current].left;
    if (child == trie::kNullNode) {
      child = allocate();
      if (go_right) {
        nodes_[current].right = child;
      } else {
        nodes_[current].left = child;
      }
      ++cost.nodes_created;
      cost.words_written += 2;  // parent pointer word + fresh node word
    }
    current = child;
    path.push_back(current);
  }

  net::NextHop& hop = hop_at(current, vn);
  if (hop == route.next_hop) {
    // Identical route: undo any (impossible) created nodes — path existed.
    cost.max_depth_touched = route.prefix.length();
    return cost;
  }
  const bool fresh_route = hop == net::kNoRoute;
  hop = route.next_hop;
  ++cost.words_written;  // the VN's NHI-vector entry
  cost.max_depth_touched = route.prefix.length();
  if (!fresh_route) return cost;

  ++route_counts_[vn];
  // Increment subtree counts along the path; 0->1 transitions add
  // presence.
  for (const trie::NodeIndex index : path) {
    std::uint16_t& count = subtree_routes(index, vn);
    VR_REQUIRE(count < 0xffff, "subtree route count overflow");
    if (count++ == 0) {
      if ((nodes_[index].presence & vbit) == 0) {
        nodes_[index].presence |= vbit;
        ++present_counts_[vn];
      }
    }
  }
  return cost;
}

trie::UpdateCost UpdatableMergedTrie::do_withdraw(net::VnId vn,
                                                  const net::Prefix& prefix) {
  trie::UpdateCost cost;
  const std::uint64_t vbit = std::uint64_t{1} << vn;
  std::vector<trie::NodeIndex> path{0};
  trie::NodeIndex current = 0;
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    const Node& node = nodes_[current];
    const trie::NodeIndex child =
        prefix.bit(depth) ? node.right : node.left;
    if (child == trie::kNullNode) return cost;  // not present
    current = child;
    path.push_back(current);
  }
  net::NextHop& hop = hop_at(current, vn);
  if (hop == net::kNoRoute) return cost;  // VN has no such route
  hop = net::kNoRoute;
  --route_counts_[vn];
  ++cost.words_written;
  cost.max_depth_touched = prefix.length();

  // Decrement subtree counts; 1->0 transitions drop presence.
  for (const trie::NodeIndex index : path) {
    std::uint16_t& count = subtree_routes(index, vn);
    VR_REQUIRE(count > 0, "subtree route count underflow");
    if (--count == 0 && index != 0) {
      nodes_[index].presence &= ~vbit;
      --present_counts_[vn];
    }
  }

  // Prune nodes no VN needs anymore, bottom-up along the path (the root
  // always stays).
  for (std::size_t i = path.size(); i-- > 1;) {
    const trie::NodeIndex index = path[i];
    const Node& node = nodes_[index];
    if (!node.is_leaf() || node.presence != 0) break;
    const trie::NodeIndex parent = path[i - 1];
    if (nodes_[parent].left == index) {
      nodes_[parent].left = trie::kNullNode;
    } else {
      nodes_[parent].right = trie::kNullNode;
    }
    release(index);
    ++cost.nodes_removed;
    ++cost.words_written;
  }
  return cost;
}

std::optional<net::NextHop> UpdatableMergedTrie::lookup(net::Ipv4 addr,
                                                        net::VnId vn) const {
  VR_REQUIRE(vn < vn_count_, "VNID out of range");
  std::optional<net::NextHop> best;
  trie::NodeIndex current = 0;
  for (unsigned depth = 0;; ++depth) {
    const net::NextHop hop = hop_at(current, vn);
    if (hop != net::kNoRoute) best = hop;
    if (depth >= 32) break;
    const Node& node = nodes_[current];
    const trie::NodeIndex child =
        bit_at(addr.value(), depth) ? node.right : node.left;
    if (child == trie::kNullNode) break;
    current = child;
  }
  return best;
}

std::size_t UpdatableMergedTrie::present_count(net::VnId vn) const {
  VR_REQUIRE(vn < vn_count_, "VNID out of range");
  return present_counts_[vn];
}

double UpdatableMergedTrie::alpha_effective() const {
  if (vn_count_ <= 1) return 1.0;
  double sum = 0.0;
  for (const std::size_t count : present_counts_) {
    sum += static_cast<double>(count);
  }
  const double t = static_cast<double>(live_nodes_);
  const double alpha = (sum / t - 1.0) / static_cast<double>(vn_count_ - 1);
  return std::clamp(alpha, 0.0, 1.0);
}

net::RoutingTable UpdatableMergedTrie::table_of(net::VnId vn) const {
  VR_REQUIRE(vn < vn_count_, "VNID out of range");
  std::vector<net::Route> routes;
  struct Frame {
    trie::NodeIndex node;
    std::uint32_t bits;
    unsigned depth;
  };
  std::vector<Frame> stack{{0, 0, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const net::NextHop hop = hop_at(frame.node, vn);
    if (hop != net::kNoRoute) {
      routes.push_back(net::Route{
          net::Prefix(net::Ipv4(frame.bits), frame.depth), hop});
    }
    if (frame.depth < 32) {
      const Node& node = nodes_[frame.node];
      if (node.left != trie::kNullNode) {
        stack.push_back(Frame{node.left, frame.bits, frame.depth + 1});
      }
      if (node.right != trie::kNullNode) {
        stack.push_back(Frame{
            node.right,
            frame.bits | (std::uint32_t{1} << (31u - frame.depth)),
            frame.depth + 1});
      }
    }
  }
  return net::RoutingTable(std::move(routes));
}

}  // namespace vr::virt
