// Ablation: relaxing Assumption 1 — skewed per-VN utilizations (Zipf µ)
// instead of uniform 1/K. The paper notes "more complex distributions can
// be modeled by appropriately changing the µ_i values" (Sec. IV-A); this
// sweep shows that the virtualization power advantage is insensitive to
// skew because the dynamic terms depend only on Σµ_i while the dominant
// leakage term depends only on the device count.
#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "power/utilization.hpp"

int main() {
  using namespace vr;
  const core::PowerEstimator estimator{fpga::DeviceSpec::xc6vlx760()};
  constexpr std::size_t kVns = 10;

  SeriesTable out(
      "Ablation - utilization skew (K = 10, grade -2): total power (W)",
      "zipf_skew_x100", {"NV", "VS", "VM80", "NV/VS ratio"});
  for (const double skew : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    const std::vector<double> mu = power::zipf_utilization(kVns, skew);
    std::vector<double> totals;
    for (const auto scheme :
         {power::Scheme::kNonVirtualized, power::Scheme::kSeparate,
          power::Scheme::kMerged}) {
      core::Scenario s;
      s.scheme = scheme;
      s.vn_count = kVns;
      s.alpha = 0.8;
      s.utilization = mu;
      totals.push_back(estimator.estimate(s).power.total_w().value());
    }
    out.add_point(skew * 100.0,
                  {totals[0], totals[1], totals[2], totals[0] / totals[1]});
  }
  vr::bench::emit(out);
  std::cout << "The NV/VS power ratio stays ~K across every skew level:\n"
               "the virtualization savings are a leakage effect, not a\n"
               "traffic-shape effect.\n";
  return 0;
}
