// PowerEstimator — the library's headline API: applies the paper's
// analytical models (Sec. IV) to a Scenario and reports power, resources,
// throughput and efficiency.
#pragma once

#include "core/scenario.hpp"
#include "core/workload.hpp"
#include "fpga/device.hpp"
#include "fpga/freq_model.hpp"
#include "power/analytical_model.hpp"
#include "power/resource_model.hpp"

namespace vr::core {

/// A complete analytical estimate for one scenario.
struct Estimate {
  power::PowerBreakdown power;
  power::SchemeResources resources;
  power::FitReport fit;
  units::Megahertz freq_mhz;      ///< operating clock used
  units::Gbps throughput_gbps;    ///< aggregate lookup capacity
  units::MwPerGbps mw_per_gbps;   ///< Sec. VI-B efficiency metric
  double alpha_used = 1.0;
};

class PowerEstimator {
 public:
  explicit PowerEstimator(fpga::DeviceSpec device,
                          fpga::FreqModelParams freq_params = {});

  /// Realizes the scenario's workload and estimates it.
  [[nodiscard]] Estimate estimate(const Scenario& scenario) const;

  /// Estimates a scenario against an already-realized workload (lets
  /// sweeps reuse the expensive table builds).
  [[nodiscard]] Estimate estimate(const Scenario& scenario,
                                  const Workload& workload) const;

  /// The operating clock a scenario runs at: the post-PnR achievable Fmax
  /// of its most congested device (Sec. VI-B — merged designs slow down as
  /// K grows), capped by scenario.freq_mhz when set. Shared with the
  /// experiment runner so model-vs-experiment error isolates power effects.
  [[nodiscard]] units::Megahertz operating_frequency_mhz(
      const Scenario& scenario, const Workload& workload) const;

  [[nodiscard]] const fpga::DeviceSpec& device() const noexcept {
    return device_;
  }

 private:
  fpga::DeviceSpec device_;
  fpga::FreqModelParams freq_params_;
  power::AnalyticalModel model_;
};

}  // namespace vr::core
