// The paper's analytical Layer-3 power models (Sec. IV, Eqs. 1–6).
//
// Power decomposes into leakage P_L, per-stage logic power P(L_{i,j}) and
// per-stage memory power P(M_{i,j}); dynamic terms are weighted by the
// virtual networks' utilizations µ_i (clock gating makes an idle engine's
// dynamic power zero, Sec. IV):
//
//   NV (Eq. 2):  P = Σ_i ( P_L + µ_i Σ_j (P(L_{i,j}) + P(M_{i,j})) )
//   VS (Eq. 4):  P = P_L + Σ_i µ_i Σ_j (P(L_{i,j}) + P(M_{i,j}))
//   VM (Eq. 6):  P = P_L + Σ_j (P(L_{0,j}) + P(M_merged,j))
//
// with the merged per-stage memory given by the overlap model (DESIGN.md
// Sec. 3). P(M) follows Table III: block-granular coefficients times the
// operating frequency; P(L) is the Sec. V-C per-stage coefficient.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "fpga/device.hpp"
#include "power/scheme.hpp"

namespace vr::power {

/// One lookup pipeline's memory image: bits per stage (the M_{i,j} row).
struct EngineSpec {
  std::vector<std::uint64_t> stage_bits;

  [[nodiscard]] std::size_t stage_count() const noexcept {
    return stage_bits.size();
  }
};

/// Operating conditions shared by the scheme estimators.
struct OperatingPoint {
  fpga::SpeedGrade grade = fpga::SpeedGrade::kMinus2;
  fpga::BramPolicy bram_policy = fpga::BramPolicy::kMixed;
  /// Clock every engine runs at.
  units::Megahertz freq_mhz{400.0};
  /// Per-VN utilizations µ_i (dimensionless fractions). Empty = uniform 1/K
  /// (Assumption 1). Must sum to <= engines' capacity; the estimators only
  /// use the values.
  std::vector<double> utilization;
};

/// Component breakdown of an estimate.
struct PowerBreakdown {
  units::Watts static_w;
  units::Watts logic_w;
  units::Watts memory_w;
  std::size_t devices = 0;
  units::Megahertz freq_mhz;

  [[nodiscard]] constexpr units::Watts total_w() const noexcept {
    return static_w + logic_w + memory_w;
  }
  [[nodiscard]] constexpr units::Watts dynamic_w() const noexcept {
    return logic_w + memory_w;
  }
};

/// The analytical model, bound to a device.
class AnalyticalModel {
 public:
  explicit AnalyticalModel(fpga::DeviceSpec device);

  /// Eq. 2 — non-virtualized: engines.size() devices, one engine each.
  [[nodiscard]] PowerBreakdown estimate_nv(
      std::span<const EngineSpec> engines, const OperatingPoint& op) const;

  /// Eq. 4 — virtualized-separate: one device hosting all engines.
  [[nodiscard]] PowerBreakdown estimate_vs(
      std::span<const EngineSpec> engines, const OperatingPoint& op) const;

  /// Eq. 6 — virtualized-merged: one device, one merged engine whose
  /// stage_bits already include the K-wide NHI leaves. The merged engine
  /// serves the aggregate stream, so its dynamic power is weighted by
  /// Σ µ_i (1 under Assumption 1).
  [[nodiscard]] PowerBreakdown estimate_vm(const EngineSpec& merged_engine,
                                           std::size_t vn_count,
                                           const OperatingPoint& op) const;

  /// P(M_{i,j}) for one stage of `bits` bits — Table III applied through
  /// the allocator. Exposed for tests and the Table III bench.
  [[nodiscard]] units::Watts stage_memory_power_w(
      units::Bits bits, const OperatingPoint& op) const;

  /// P(L_{i,j}) for one stage — the Sec. V-C linear coefficient.
  [[nodiscard]] units::Watts stage_logic_power_w(
      const OperatingPoint& op) const;

  [[nodiscard]] const fpga::DeviceSpec& device() const noexcept {
    return device_;
  }

 private:
  /// Resolves µ_i: explicit vector or uniform 1/K.
  [[nodiscard]] std::vector<double> resolve_utilization(
      const OperatingPoint& op, std::size_t vn_count) const;

  /// Accumulates one engine's dynamic power at utilization u into
  /// *logic_w / *memory_w.
  void engine_dynamic_w(const EngineSpec& engine, double u,
                        const OperatingPoint& op, units::Watts* logic_w,
                        units::Watts* memory_w) const;

  fpga::DeviceSpec device_;
};

}  // namespace vr::power
