
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipv6/ipv6.cpp" "src/ipv6/CMakeFiles/vr_ipv6.dir/ipv6.cpp.o" "gcc" "src/ipv6/CMakeFiles/vr_ipv6.dir/ipv6.cpp.o.d"
  "/root/repo/src/ipv6/ipv6_trie.cpp" "src/ipv6/CMakeFiles/vr_ipv6.dir/ipv6_trie.cpp.o" "gcc" "src/ipv6/CMakeFiles/vr_ipv6.dir/ipv6_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trie/CMakeFiles/vr_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/vr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
