// Header-editing stage: applies the forwarding rewrite after lookup — TTL
// decrement with the RFC 1624 incremental checksum update (the operation
// FPGA routers implement without a full checksum recompute).
#pragma once

#include <cstdint>
#include <optional>

#include "dataplane/parser.hpp"
#include "netbase/prefix.hpp"

namespace vr::dataplane {

/// A packet after lookup + editing, bound for the scheduler.
struct ForwardedPacket {
  net::VnId vnid = 0;
  net::NextHop port = net::kNoRoute;
  net::Ipv4Header header;
  std::uint16_t payload_bytes = 0;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return net::Ipv4Header::kSize + payload_bytes;
  }
};

struct EditorStats {
  std::uint64_t forwarded = 0;
  std::uint64_t no_route = 0;     ///< lookup returned nothing: drop
  std::uint64_t ttl_expired = 0;  ///< TTL hit zero at decrement: drop
};

/// Single-cycle editor.
class Editor {
 public:
  /// Applies the next hop and rewrites the header. Returns nullopt when
  /// the packet must be dropped (no route / TTL expiry).
  [[nodiscard]] std::optional<ForwardedPacket> edit(
      const ParsedPacket& packet, std::optional<net::NextHop> next_hop);

  [[nodiscard]] const EditorStats& stats() const noexcept { return stats_; }

 private:
  EditorStats stats_;
};

}  // namespace vr::dataplane
