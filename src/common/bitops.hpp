// Small bit-manipulation helpers shared by the networking and trie modules.
#pragma once

#include <bit>
#include <cstdint>

#include "common/error.hpp"

namespace vr {

/// Ceiling division for non-negative integers; ceil_div(0, b) == 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// Mask with the top `len` bits of a 32-bit word set (len in [0,32]).
constexpr std::uint32_t prefix_mask(unsigned len) noexcept {
  return len == 0 ? 0u : ~std::uint32_t{0} << (32u - len);
}

/// Extracts bit `index` (0 = most significant) of a 32-bit word.
constexpr bool bit_at(std::uint32_t word, unsigned index) noexcept {
  return ((word >> (31u - index)) & 1u) != 0;
}

/// Number of bits needed to address `count` distinct items (>=1 for count>1,
/// 0 for count<=1).
constexpr unsigned address_bits(std::uint64_t count) noexcept {
  if (count <= 1) return 0;
  return static_cast<unsigned>(std::bit_width(count - 1));
}

/// Rounds `value` up to the next multiple of `step` (step > 0).
constexpr std::uint64_t round_up(std::uint64_t value,
                                 std::uint64_t step) noexcept {
  return ceil_div(value, step) * step;
}

}  // namespace vr
