#include "core/figures.hpp"

#include <cmath>

#include "common/units.hpp"
#include "fpga/xpe_tables.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "trie/unibit_trie.hpp"

namespace vr::core {

namespace {

constexpr double kFreqStartMhz = 100.0;
constexpr double kFreqStopMhz = 500.0;
constexpr double kFreqStepMhz = 50.0;

/// Wall time to build one figure, one labeled family member per figure.
obs::Histogram& figure_timer(const char* figure) {
  return obs::Registry::global().histogram("figures.build_ns",
                                           {{"figure", figure}});
}

}  // namespace

FigureBuilder::FigureBuilder(fpga::DeviceSpec device, FigureOptions options,
                             fpga::PnrEffects effects,
                             fpga::FreqModelParams freq_params)
    : device_(std::move(device)),
      options_(options),
      validator_(device_, effects, freq_params),
      runner_(options.threads) {}

std::shared_ptr<const Workload> FigureBuilder::workload_for(
    const Scenario& scenario) const {
  if (options_.use_cache) {
    return WorkloadCache::global().realize(scenario);
  }
  return std::make_shared<const Workload>(realize_workload(scenario));
}

Scenario FigureBuilder::sweep_scenario(power::Scheme scheme,
                                       std::size_t vn_count, double alpha,
                                       fpga::SpeedGrade grade) const {
  Scenario s;
  s.scheme = scheme;
  s.vn_count = vn_count;
  s.grade = grade;
  s.bram_policy = options_.bram_policy;
  s.stages = options_.stages;
  s.alpha = alpha;
  s.merged_source = options_.merged_source;
  s.table_profile = options_.table_profile;
  s.seed = options_.seed;
  return s;
}

SeriesTable FigureBuilder::fig2_bram_power() const {
  const obs::ScopedTimer timer(figure_timer("fig2"));
  SeriesTable table(
      "Fig. 2 - BRAM power vs operating frequency (single block, mW)",
      "freq_mhz",
      {"18Kb(-2)", "36Kb(-2)", "18Kb(-1L)", "36Kb(-1L)"});
  for (double f = kFreqStartMhz; f <= kFreqStopMhz; f += kFreqStepMhz) {
    const units::Megahertz freq{f};
    const auto block_mw = [freq](fpga::BramKind kind, fpga::SpeedGrade g) {
      return units::to_milliwatts(
                 fpga::XpeTables::bram_power_w(kind, g, 1, freq))
          .value();
    };
    table.add_point(
        f, {block_mw(fpga::BramKind::k18, fpga::SpeedGrade::kMinus2),
            block_mw(fpga::BramKind::k36, fpga::SpeedGrade::kMinus2),
            block_mw(fpga::BramKind::k18, fpga::SpeedGrade::kMinus1L),
            block_mw(fpga::BramKind::k36, fpga::SpeedGrade::kMinus1L)});
  }
  return table;
}

SeriesTable FigureBuilder::fig3_logic_power() const {
  const obs::ScopedTimer timer(figure_timer("fig3"));
  SeriesTable table(
      "Fig. 3 - per-stage logic+signal power vs frequency (mW)", "freq_mhz",
      {"stage(-2)", "stage(-1L)"});
  for (double f = kFreqStartMhz; f <= kFreqStopMhz; f += kFreqStepMhz) {
    const units::Megahertz freq{f};
    table.add_point(
        f, {units::to_milliwatts(fpga::XpeTables::logic_power_w(
                                     fpga::SpeedGrade::kMinus2, 1, freq))
                .value(),
            units::to_milliwatts(fpga::XpeTables::logic_power_w(
                                     fpga::SpeedGrade::kMinus1L, 1, freq))
                .value()});
  }
  return table;
}

FigureBuilder::Fig4 FigureBuilder::fig4_memory() const {
  const obs::ScopedTimer timer(figure_timer("fig4"));
  const std::string hi = "merged(a=" +
                         TextTable::num(options_.alpha_high * 100.0, 0) +
                         "%)";
  const std::string lo = "merged(a=" +
                         TextTable::num(options_.alpha_low * 100.0, 0) + "%)";
  Fig4 fig{
      SeriesTable("Fig. 4 (left) - pointer memory vs #VNs (Kbits)",
                  "vn_count", {hi, lo, "separate"}),
      SeriesTable("Fig. 4 (right) - NHI memory vs #VNs (Kbits)", "vn_count",
                  {hi, lo, "separate"}),
  };
  const PowerEstimator& estimator = validator_.estimator();
  struct Row {
    double ptr[3] = {0, 0, 0};
    double nhi[3] = {0, 0, 0};
  };
  const std::vector<Row> rows =
      runner_.map(options_.memory_max_vn, [&](std::size_t i) {
        const std::size_t k = i + 1;
        Row row;
        const struct {
          power::Scheme scheme;
          double alpha;
        } cases[3] = {{power::Scheme::kMerged, options_.alpha_high},
                      {power::Scheme::kMerged, options_.alpha_low},
                      {power::Scheme::kSeparate, 1.0}};
        for (int c = 0; c < 3; ++c) {
          const Scenario s = sweep_scenario(cases[c].scheme, k,
                                            cases[c].alpha,
                                            fpga::SpeedGrade::kMinus2);
          const Estimate est = estimator.estimate(s, *workload_for(s));
          row.ptr[c] = units::bits_to_kbits(est.resources.pointer_bits);
          row.nhi[c] = units::bits_to_kbits(est.resources.nhi_bits);
        }
        return row;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    fig.pointer_memory.add_point(static_cast<double>(i + 1),
                                 {row.ptr[0], row.ptr[1], row.ptr[2]});
    fig.nhi_memory.add_point(static_cast<double>(i + 1),
                             {row.nhi[0], row.nhi[1], row.nhi[2]});
  }
  return fig;
}

SeriesTable FigureBuilder::fig5_total_power(fpga::SpeedGrade grade) const {
  const obs::ScopedTimer timer(figure_timer("fig5"));
  SeriesTable table(
      std::string("Fig. 5 - total power vs #VNs, grade ") +
          fpga::to_string(grade) + " (W; model | experimental)",
      "vn_count",
      {"NV model", "NV exp", "VS model", "VS exp", "VM80 model", "VM80 exp",
       "VM20 model", "VM20 exp"});
  const std::vector<std::vector<double>> rows =
      runner_.map(options_.max_vn, [&](std::size_t i) {
        const std::size_t k = i + 1;
        std::vector<double> row;
        const struct {
          power::Scheme scheme;
          double alpha;
        } cases[] = {{power::Scheme::kNonVirtualized, 1.0},
                     {power::Scheme::kSeparate, 1.0},
                     {power::Scheme::kMerged, options_.alpha_high},
                     {power::Scheme::kMerged, options_.alpha_low}};
        for (const auto& c : cases) {
          const Scenario s = sweep_scenario(c.scheme, k, c.alpha, grade);
          const ValidationPoint point =
              validator_.validate(s, *workload_for(s));
          row.push_back(point.model.power.total_w().value());
          row.push_back(point.experiment.power.total_w().value());
        }
        return row;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_point(static_cast<double>(i + 1), rows[i]);
  }
  return table;
}

SeriesTable FigureBuilder::fig6_virtualized_power(
    fpga::SpeedGrade grade) const {
  const obs::ScopedTimer timer(figure_timer("fig6"));
  SeriesTable table(
      std::string("Fig. 6 - virtualized schemes total power vs #VNs, grade ") +
          fpga::to_string(grade) + " (W, experimental)",
      "vn_count", {"VS", "VM80", "VM20"});
  const std::vector<std::vector<double>> rows =
      runner_.map(options_.max_vn, [&](std::size_t i) {
        const std::size_t k = i + 1;
        std::vector<double> row;
        const struct {
          power::Scheme scheme;
          double alpha;
        } cases[] = {{power::Scheme::kSeparate, 1.0},
                     {power::Scheme::kMerged, options_.alpha_high},
                     {power::Scheme::kMerged, options_.alpha_low}};
        for (const auto& c : cases) {
          const Scenario s = sweep_scenario(c.scheme, k, c.alpha, grade);
          const ValidationPoint point =
              validator_.validate(s, *workload_for(s));
          row.push_back(point.experiment.power.total_w().value());
        }
        return row;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_point(static_cast<double>(i + 1), rows[i]);
  }
  return table;
}

SeriesTable FigureBuilder::fig7_model_error(fpga::SpeedGrade grade) const {
  const obs::ScopedTimer timer(figure_timer("fig7"));
  SeriesTable table(
      std::string("Fig. 7 - model percentage error vs #VNs, grade ") +
          fpga::to_string(grade) + " (%)",
      "vn_count", {"NV", "VS", "VM80", "VM20"});
  const std::vector<std::vector<double>> rows =
      runner_.map(options_.max_vn, [&](std::size_t i) {
        const std::size_t k = i + 1;
        std::vector<double> row;
        const struct {
          power::Scheme scheme;
          double alpha;
        } cases[] = {{power::Scheme::kNonVirtualized, 1.0},
                     {power::Scheme::kSeparate, 1.0},
                     {power::Scheme::kMerged, options_.alpha_high},
                     {power::Scheme::kMerged, options_.alpha_low}};
        for (const auto& c : cases) {
          const Scenario s = sweep_scenario(c.scheme, k, c.alpha, grade);
          const ValidationPoint point =
              validator_.validate(s, *workload_for(s));
          row.push_back(point.error_total_pct);
        }
        return row;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_point(static_cast<double>(i + 1), rows[i]);
  }
  return table;
}

SeriesTable FigureBuilder::fig8_efficiency(fpga::SpeedGrade grade) const {
  const obs::ScopedTimer timer(figure_timer("fig8"));
  SeriesTable table(
      std::string("Fig. 8 - power per unit throughput vs #VNs, grade ") +
          fpga::to_string(grade) + " (mW/Gbps, experimental)",
      "vn_count", {"NV", "VS", "VM80", "VM20"});
  const std::vector<std::vector<double>> rows =
      runner_.map(options_.max_vn, [&](std::size_t i) {
        const std::size_t k = i + 1;
        std::vector<double> row;
        const struct {
          power::Scheme scheme;
          double alpha;
        } cases[] = {{power::Scheme::kNonVirtualized, 1.0},
                     {power::Scheme::kSeparate, 1.0},
                     {power::Scheme::kMerged, options_.alpha_high},
                     {power::Scheme::kMerged, options_.alpha_low}};
        for (const auto& c : cases) {
          const Scenario s = sweep_scenario(c.scheme, k, c.alpha, grade);
          const ExperimentResult exp =
              validator_.runner().run(s, *workload_for(s));
          row.push_back(exp.mw_per_gbps.value());
        }
        return row;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_point(static_cast<double>(i + 1), rows[i]);
  }
  return table;
}

TextTable FigureBuilder::table_trie_stats() const {
  const obs::ScopedTimer timer(figure_timer("tablev"));
  TextTable table("Sec. V-E - representative routing table and trie");
  table.set_header({"quantity", "this repro", "paper"});
  const net::SyntheticTableGenerator gen(options_.table_profile);
  const net::RoutingTable routing_table = gen.generate(options_.seed);
  const trie::UnibitTrie raw(routing_table);
  const trie::UnibitTrie pushed = raw.leaf_pushed();
  table.add_row({"prefixes", std::to_string(routing_table.size()), "3725"});
  table.add_row({"trie nodes (no leaf push)", std::to_string(raw.node_count()),
                 "9726"});
  table.add_row({"trie nodes (leaf pushed)",
                 std::to_string(pushed.node_count()), "16127"});
  table.add_row(
      {"nodes/prefix (raw)",
       TextTable::num(static_cast<double>(raw.node_count()) /
                          static_cast<double>(routing_table.size()),
                      2),
       TextTable::num(9726.0 / 3725.0, 2)});
  table.add_row(
      {"leaf-push expansion",
       TextTable::num(static_cast<double>(pushed.node_count()) /
                          static_cast<double>(raw.node_count()),
                      2),
       TextTable::num(16127.0 / 9726.0, 2)});
  return table;
}

}  // namespace vr::core
