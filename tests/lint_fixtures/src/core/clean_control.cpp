#include "clean_control.hpp"

namespace vr::core {

void CleanControl::record(std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mu_);
  history_[value] += 1;
}

std::uint64_t CleanControl::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [value, count] : history_) {  // std::map: ordered, clean
    total += count;
  }
  return total;
}

}  // namespace vr::core
