// Whole-router functional models: the three deployments of the paper
// assembled from lookup engines, plus the trace-driven simulation driver.
//
//   * SeparateRouter — K engines, one per VN, fed through a VNID
//     distributor (models both NV, where the engines live on K devices,
//     and VS, where they share one device; power attribution differs, the
//     functional behaviour is identical — Assumption 3 makes the
//     distributor free).
//   * MergedRouter — one time-shared engine over the merged trie; the
//     VNID selects the NHI vector entry at the leaves (Sec. IV-C).
#pragma once

#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "pipeline/lookup_engine.hpp"

namespace vr::pipeline {

/// Abstract router: accepts tagged packets, runs cycle by cycle.
class VirtualRouter {
 public:
  virtual ~VirtualRouter() = default;
  VirtualRouter() = default;
  VirtualRouter(const VirtualRouter&) = delete;
  VirtualRouter& operator=(const VirtualRouter&) = delete;

  /// Offers a packet for injection this cycle; false = back-pressure.
  virtual bool offer(const net::Packet& packet) = 0;
  /// Advances all engines one cycle.
  virtual void tick(std::vector<LookupResult>* out) = 0;
  [[nodiscard]] virtual bool drained() const = 0;
  [[nodiscard]] virtual std::size_t engine_count() const = 0;
  [[nodiscard]] virtual const LookupEngine& engine(std::size_t i) const = 0;
  [[nodiscard]] virtual std::size_t vn_count() const = 0;
};

/// K space-shared engines (NV and VS data planes).
class SeparateRouter final : public VirtualRouter {
 public:
  /// One (leaf-pushed or raw) trie per VN; all engines share a depth.
  SeparateRouter(std::vector<TrieView> tries, std::size_t stage_count);

  bool offer(const net::Packet& packet) override;
  void tick(std::vector<LookupResult>* out) override;
  [[nodiscard]] bool drained() const override;
  [[nodiscard]] std::size_t engine_count() const override {
    return engines_.size();
  }
  [[nodiscard]] const LookupEngine& engine(std::size_t i) const override {
    return engines_[i];
  }
  [[nodiscard]] std::size_t vn_count() const override {
    return engines_.size();
  }

 private:
  std::vector<LookupEngine> engines_;
};

/// One time-shared engine over the merged trie (VM data plane).
class MergedRouter final : public VirtualRouter {
 public:
  MergedRouter(const virt::MergedTrie& merged, std::size_t stage_count);

  bool offer(const net::Packet& packet) override;
  void tick(std::vector<LookupResult>* out) override;
  [[nodiscard]] bool drained() const override;
  [[nodiscard]] std::size_t engine_count() const override { return 1; }
  [[nodiscard]] const LookupEngine& engine(std::size_t) const override {
    return engine_;
  }
  [[nodiscard]] std::size_t vn_count() const override {
    return vn_count_;
  }

 private:
  LookupEngine engine_;
  std::size_t vn_count_;
};

/// Outcome of driving a trace through a router.
struct SimulationResult {
  std::vector<LookupResult> results;
  std::uint64_t cycles = 0;
  std::size_t max_queue_depth = 0;  ///< worst back-pressure queue length
  /// Measured utilization per engine (busy-stage fraction).
  std::vector<double> engine_utilization;
};

/// Feeds `trace` (sorted by cycle) into the router, ticking until every
/// packet has exited. Packets that cannot be injected at their arrival
/// cycle wait in a FIFO (back-pressure), which the result records.
[[nodiscard]] SimulationResult run_trace(
    VirtualRouter& router, std::span<const net::TimedPacket> trace);

}  // namespace vr::pipeline
