// Update-rate power and throughput model.
//
// Table III's BRAM coefficients were measured at a 1 % write rate
// (Sec. V-B, "low update rate"). This model quantifies what happens when
// the control plane pushes more updates: each update writes a number of
// node words (trie::UpdateCost), every write occupies a pipeline slot that
// a lookup cannot use, and BRAM dynamic power shifts with the write rate.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "fpga/bram.hpp"
#include "trie/updatable_trie.hpp"

namespace vr::power {

struct UpdateRateModel {
  /// Write rate already folded into the Table III coefficients.
  double baseline_write_rate = 0.01;
  /// Fractional BRAM power change per unit of write-rate change (a
  /// dimensionless sensitivity, not a power). XPE-style BRAM write energy
  /// is of the same order as read energy; 0.30 means a write-saturated
  /// memory (rate 1.0) burns 30 % more than the Table III value.
  double write_power_sensitivity = 0.30;  // units-ok: dimensionless ratio
};

/// Steady-state write statistics of an update stream against a deployment.
struct UpdateLoad {
  double updates_per_second = 0.0;
  /// Average node words written per update (from trie::UpdateCost).
  double words_per_update = 0.0;

  /// Writes per second hitting the memories.
  [[nodiscard]] double writes_per_second() const noexcept {
    return updates_per_second * words_per_update;
  }
  /// Fraction of clock cycles consumed by writes (one write port: each
  /// write occupies one cycle of one stage; normalized to the engine's
  /// issue slots).
  [[nodiscard]] double write_slot_fraction(units::Megahertz freq)
      const noexcept {
    if (freq <= units::Megahertz{0.0}) return 0.0;
    return writes_per_second() / (freq.value() * 1e6);
  }
};

/// BRAM power adjusted from the Table III baseline to an actual write
/// rate: P' = P * (1 + sensitivity * (rate - baseline)).
[[nodiscard]] units::Watts adjusted_bram_power_w(
    units::Watts table3_power, double write_rate,
    const UpdateRateModel& model = {});

/// Effective lookup capacity after update writes steal issue slots:
/// capacity = (1 - write_slot_fraction) * line_rate.
[[nodiscard]] units::Gbps effective_lookup_gbps(units::Megahertz freq,
                                                const UpdateLoad& load);

/// Mean words per update measured by replaying `updates` on a copy of the
/// deployment trie.
[[nodiscard]] UpdateLoad measure_update_load(
    const net::RoutingTable& base,
    const std::vector<net::RouteUpdate>& updates, double updates_per_second);

}  // namespace vr::power
