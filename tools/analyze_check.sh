#!/usr/bin/env bash
# The GCC deep-analysis prong: configure a dedicated build tree with
# -DVR_ANALYZE=ON (GCC -fanalyzer + escalated warnings-as-errors on src/)
# and compile the library targets. Any analyzer finding or escalated
# warning fails the build and therefore this script.
#
# Tests, benches and examples are off: the analyzer's bar applies to src/
# only, and skipping them roughly halves the gate's wall time.
#
# Usage: tools/analyze_check.sh [build-dir]
#   build-dir  analysis build tree (default: <repo>/build-analyze)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-analyze}"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DVR_ANALYZE=ON \
  -DVRPOWER_BUILD_TESTS=OFF \
  -DVRPOWER_BUILD_BENCH=OFF \
  -DVRPOWER_BUILD_EXAMPLES=OFF \
  > "${build_dir}.configure.log" 2>&1 || {
    cat "${build_dir}.configure.log" >&2
    echo "analyze_check: configure FAILED" >&2
    exit 1
  }
rm -f "${build_dir}.configure.log"

jobs="$(nproc 2> /dev/null || echo 2)"
cmake --build "${build_dir}" -j "${jobs}" || {
  echo "analyze_check: FAILED (-fanalyzer or escalated warnings fired)" >&2
  exit 1
}
echo "analyze_check: clean"
