// Regenerates paper Fig. 6: total (experimental) power of the virtualized
// schemes only — VS, VM(80 %), VM(20 %) — vs number of virtual networks,
// where the tool-optimization-driven decrease is visible.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vr;
  const core::FigureBuilder builder(fpga::DeviceSpec::xc6vlx760(),
                                    bench::paper_options(argc, argv));
  bench::emit(builder.fig6_virtualized_power(fpga::SpeedGrade::kMinus2));
  bench::emit(builder.fig6_virtualized_power(fpga::SpeedGrade::kMinus1L));
  return 0;
}
