#!/usr/bin/env python3
"""Self-test for tools/bench_diff.py, pytest-style.

Each test_* function exercises one contract of the diff tool through the
real CLI (subprocess): tolerance math, shape mismatches with clear
per-key messages (never a traceback), the metrics-subtree exclusion, and
top-level validation.

Run:  python3 tools/test_bench_diff.py    (or under pytest)
Exit: 0 all pass, 1 otherwise.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile

TOOL = pathlib.Path(__file__).resolve().parent / "bench_diff.py"

BASE = {
    "benchmark": "perf_fixture",
    "rows": [{"scheme": "separate", "power_w": 10.0},
             {"scheme": "merged", "power_w": 6.0}],
    "metrics": {"wall_ns": 123456},
}


def run_diff(first, second, *argv):
    """Writes the two documents to temp files and runs bench_diff.py."""
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for name, doc in (("first.json", first), ("second.json", second)):
            path = pathlib.Path(tmp) / name
            path.write_text(doc if isinstance(doc, str) else json.dumps(doc))
            paths.append(str(path))
        return subprocess.run(
            [sys.executable, str(TOOL), *paths, *argv],
            capture_output=True, text=True, check=False)


def edited(**top_level):
    doc = json.loads(json.dumps(BASE))
    doc.update(top_level)
    return doc


def test_identical_reports_agree():
    proc = run_diff(BASE, BASE)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "agree" in proc.stdout


def test_within_tolerance_passes_and_beyond_fails():
    rows = [{"scheme": "separate", "power_w": 10.4},
            {"scheme": "merged", "power_w": 6.0}]
    assert run_diff(BASE, edited(rows=rows)).returncode == 0  # 4% < 5%
    rows[0]["power_w"] = 11.0                                 # ~9% > 5%
    proc = run_diff(BASE, edited(rows=rows))
    assert proc.returncode == 1
    assert "rows[0].power_w" in proc.stdout


def test_missing_top_level_key_names_the_key_and_file():
    second = edited()
    del second["rows"]
    proc = run_diff(BASE, second)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "Traceback" not in proc.stderr
    assert "rows: only in" in proc.stdout
    assert "first.json" in proc.stdout


def test_extra_top_level_key_names_the_key_and_file():
    proc = run_diff(BASE, edited(surprise=1))
    assert proc.returncode == 1
    assert "surprise: only in" in proc.stdout
    assert "second.json" in proc.stdout


def test_metrics_subtree_skipped_by_default_even_one_sided():
    noisy = edited(metrics={"wall_ns": 999999999, "cache_hits": 7})
    assert run_diff(BASE, noisy).returncode == 0
    bare = edited()
    del bare["metrics"]
    assert run_diff(BASE, bare).returncode == 0
    assert run_diff(bare, BASE).returncode == 0
    proc = run_diff(BASE, noisy, "--include-metrics")
    assert proc.returncode == 1
    assert "metrics" in proc.stdout


def test_identity_fields_must_match_exactly():
    rows = [{"scheme": "renamed", "power_w": 10.0},
            {"scheme": "merged", "power_w": 6.0}]
    proc = run_diff(BASE, edited(rows=rows))
    assert proc.returncode == 1
    assert "rows[0].scheme" in proc.stdout


def test_non_object_top_level_is_a_usage_error():
    proc = run_diff([1, 2, 3], BASE)
    assert proc.returncode == 2
    assert "must be an object" in proc.stderr
    assert "Traceback" not in proc.stderr


def test_malformed_json_is_a_usage_error():
    proc = run_diff("{not json", BASE)
    assert proc.returncode == 2
    assert "Traceback" not in proc.stderr


def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"  PASS {name}")
        except AssertionError as exc:
            failed += 1
            print(f"  FAIL {name}: {exc}")
    print(f"test_bench_diff: {len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
