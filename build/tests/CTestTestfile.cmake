# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/netbase_test[1]_include.cmake")
include("/root/repo/build/tests/trie_test[1]_include.cmake")
include("/root/repo/build/tests/virt_test[1]_include.cmake")
include("/root/repo/build/tests/fpga_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/update_test[1]_include.cmake")
include("/root/repo/build/tests/tcam_test[1]_include.cmake")
include("/root/repo/build/tests/multipipe_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane_test[1]_include.cmake")
include("/root/repo/build/tests/multibit_test[1]_include.cmake")
include("/root/repo/build/tests/fpga_extras_test[1]_include.cmake")
include("/root/repo/build/tests/trie_diff_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/heterogeneous_test[1]_include.cmake")
include("/root/repo/build/tests/ipv6_test[1]_include.cmake")
