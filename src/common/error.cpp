#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace vr::detail {

void require_failed(const char* condition, const char* file, int line,
                    const std::string& message) {
  std::fprintf(stderr, "vrpower: precondition failed at %s:%d: %s\n  %s\n",
               file, line, condition, message.c_str());
  std::abort();
}

}  // namespace vr::detail
