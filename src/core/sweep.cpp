#include "core/sweep.hpp"

#include <cstdlib>
#include <string>

namespace vr::core {

std::size_t default_sweep_threads() {
  if (const char* env = std::getenv("VR_THREADS")) {
    try {
      const long parsed = std::stol(env);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    } catch (...) {
      // Malformed values fall through to hardware concurrency.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace vr::core
