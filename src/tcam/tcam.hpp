// Functional TCAM (Ternary Content Addressable Memory) IP-lookup engine —
// the comparison point of the paper's related work (Sec. II-B): TCAMs
// match every stored entry in parallel on each search, which makes them
// fast but power hungry; organizing them into index-selected banks ([20]'s
// load-balanced multi-chip scheme) activates only a fraction of the
// entries per search.
//
// This module provides the functional model (flat and bank-partitioned)
// used by the tcam_power model and the `baseline_tcam_vs_trie` bench.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/routing_table.hpp"

namespace vr::tcam {

/// One TCAM entry: 32 value bits with a prefix mask, in priority order.
struct TcamEntry {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;  ///< 1-bits participate in the match
  net::NextHop next_hop = net::kNoRoute;
  unsigned prefix_length = 0;

  [[nodiscard]] bool matches(std::uint32_t key) const noexcept {
    return (key & mask) == value;
  }
};

/// Flat (single-bank) TCAM. Entries are stored longest-prefix-first so the
/// first match is the longest-prefix match, as in production TCAM usage.
class FlatTcam {
 public:
  explicit FlatTcam(const net::RoutingTable& table);

  /// Longest-prefix match. Every stored entry is activated by a search
  /// (the source of TCAM power hunger).
  [[nodiscard]] std::optional<net::NextHop> search(net::Ipv4 addr) const;

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries_.size();
  }
  /// Entries activated by one search (== entry_count for a flat TCAM).
  [[nodiscard]] std::size_t entries_triggered_per_search() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] const std::vector<TcamEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<TcamEntry> entries_;
};

/// Index-partitioned TCAM: the top `index_bits` of the key select one of
/// 2^index_bits banks; only that bank's entries are activated. Prefixes
/// shorter than the index are replicated into every bank they cover
/// (controlled prefix expansion), trading entries for per-search power.
class PartitionedTcam {
 public:
  /// index_bits in [1, 12].
  PartitionedTcam(const net::RoutingTable& table, unsigned index_bits);

  [[nodiscard]] std::optional<net::NextHop> search(net::Ipv4 addr) const;

  [[nodiscard]] unsigned index_bits() const noexcept { return index_bits_; }
  [[nodiscard]] std::size_t bank_count() const noexcept {
    return banks_.size();
  }
  /// Total stored entries (includes replication overhead).
  [[nodiscard]] std::size_t entry_count() const noexcept;
  /// Entries the worst-case search activates (largest bank).
  [[nodiscard]] std::size_t entries_triggered_per_search() const noexcept;
  /// Mean bank size (average-case activation).
  [[nodiscard]] double mean_bank_size() const noexcept;
  /// Replicated-entry overhead vs the original table: entry_count/original.
  [[nodiscard]] double replication_factor(std::size_t original) const
      noexcept {
    return original == 0 ? 1.0
                         : static_cast<double>(entry_count()) /
                               static_cast<double>(original);
  }
  [[nodiscard]] const std::vector<TcamEntry>& bank(std::size_t b) const {
    return banks_[b];
  }

 private:
  unsigned index_bits_;
  std::vector<std::vector<TcamEntry>> banks_;
};

/// Builds the priority-ordered entry list of a table (shared helper).
[[nodiscard]] std::vector<TcamEntry> entries_from_table(
    const net::RoutingTable& table);

}  // namespace vr::tcam
