// Ablation: the low-power (-1L) vs high-performance (-2) speed grade
// tradeoff the paper closes with — "-1L gives the same power efficiency as
// the high-speed platform while consuming ~30 % less power and yielding
// lower throughput" (Sec. VI-B).
#include "bench_common.hpp"
#include "core/validator.hpp"

int main() {
  using namespace vr;
  const core::ModelValidator validator{fpga::DeviceSpec::xc6vlx760()};

  SeriesTable table(
      "Ablation - speed grade tradeoff (VS scheme): power saving and "
      "efficiency ratio of -1L vs -2",
      "vn_count",
      {"power -2 (W)", "power -1L (W)", "saving %", "Gbps -2", "Gbps -1L",
       "mW/Gbps -2", "mW/Gbps -1L"});
  for (std::size_t k = 1; k <= 15; ++k) {
    core::Scenario s;
    s.scheme = power::Scheme::kSeparate;
    s.vn_count = k;
    s.grade = fpga::SpeedGrade::kMinus2;
    const core::Estimate hi = validator.estimator().estimate(s);
    s.grade = fpga::SpeedGrade::kMinus1L;
    const core::Estimate lo = validator.estimator().estimate(s);
    table.add_point(
        static_cast<double>(k),
        {hi.power.total_w().value(), lo.power.total_w().value(),
         (1.0 - lo.power.total_w() / hi.power.total_w()) * 100.0,
         hi.throughput_gbps.value(), lo.throughput_gbps.value(),
         hi.mw_per_gbps.value(), lo.mw_per_gbps.value()});
  }
  vr::bench::emit(table);
  return 0;
}
