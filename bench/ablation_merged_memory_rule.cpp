// Ablation: the paper's Eq. 5 as printed (memory = α · Σ_k M_k) vs the
// overlap-consistent closed form T = K·n/(1+(K−1)α) this library uses
// (DESIGN.md Sec. 3). The literal rule is dimensionally inconsistent with
// the paper's own Fig. 4 — memory *grows* with α — which this sweep makes
// visible.
#include "bench_common.hpp"
#include "core/workload.hpp"

int main() {
  using namespace vr;
  SeriesTable table(
      "Ablation - merged total memory (Kbits) under the two Eq. 5 readings",
      "vn_count",
      {"overlap a=80%", "overlap a=20%", "literal a=80%", "literal a=20%"});
  for (std::size_t k = 1; k <= 15; ++k) {
    std::vector<double> row;
    for (const auto rule : {virt::MergedMemoryRule::kOverlapConsistent,
                            virt::MergedMemoryRule::kPaperLiteral}) {
      for (const double alpha : {0.8, 0.2}) {
        core::Scenario s;
        s.scheme = power::Scheme::kMerged;
        s.vn_count = k;
        s.alpha = alpha;
        s.merged_rule = rule;
        const core::Workload w = core::realize_workload(s);
        std::uint64_t bits = 0;
        for (const auto b : w.merged_engine.stage_bits) bits += b;
        row.push_back(static_cast<double>(bits) / 1024.0);
      }
    }
    table.add_point(static_cast<double>(k), row);
  }
  vr::bench::emit(table);
  std::cout << "Note: under the literal reading, alpha=80% needs MORE\n"
               "memory than alpha=20% -- contradicting Fig. 4/8; the\n"
               "overlap-consistent form restores the paper's semantics.\n";
  return 0;
}
