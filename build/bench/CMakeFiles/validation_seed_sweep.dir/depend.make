# Empty dependencies file for validation_seed_sweep.
# This may be replaced when dependencies are built.
