"""narrowing — integer-narrowing casts in the hot paths must be guarded.

PR 6's NodeIndex audit found that a silently wrapped narrowing cast in a
trie flattener aliases unrelated nodes and returns plausible-but-wrong
next hops. The fix pattern is ``checked_node_index()``-style helpers: a
``VR_REQUIRE`` range check in one place, annotated once, and every
caller goes through it.

This check enforces that pattern in the lookup-critical layers
(src/trie, src/dataplane, src/pipeline): every ``static_cast`` to a
narrower integer type must either

* sit inside a ``checked_*`` helper function (the helper carries the
  range check and its own annotation), or
* carry ``// narrow-ok: <why the value fits>`` on the same or the
  preceding line.

Casts to 64-bit or wider, to floating point, and widening casts are out
of scope — only the silent-wraparound shapes are flagged.
"""

from __future__ import annotations

import re
from typing import Iterable

import core

SCOPED_SUBDIRS = {"trie", "dataplane", "pipeline"}

NARROW_CAST = re.compile(
    r"static_cast<\s*(?:std\s*::\s*)?"
    r"(u?int(?:8|16|32)_t|NodeIndex|unsigned\s+(?:char|short)|"
    r"signed\s+char|char|short)\s*>")


@core.register
class NarrowingCheck(core.Check):
    name = "narrowing"
    description = ("narrowing static_casts in trie/dataplane/pipeline go "
                   "through checked_* helpers or carry // narrow-ok")

    def run(self, tree: core.SourceTree) -> Iterable[core.Finding]:
        for f in tree.in_dirs("src"):
            if f.src_subdir not in SCOPED_SUBDIRS:
                continue
            for i, raw in enumerate(f.lines):
                code = core.strip_comment(raw)
                m = NARROW_CAST.search(code)
                if not m:
                    continue
                if f.suppressed(i, "narrow-ok"):
                    continue
                span = f.enclosing_function(i + 1)
                if span is not None and span.name.startswith("checked_"):
                    continue
                yield core.Finding(
                    self.name, f.rel, i + 1,
                    f"unguarded narrowing static_cast<{m.group(1)}> — wrap "
                    f"it in a checked_* helper (VR_REQUIRE the range, like "
                    f"trie::checked_node_index) or annotate "
                    f"'// narrow-ok: <why the value fits>'")
