# Empty dependencies file for baseline_tcam_vs_trie.
# This may be replaced when dependencies are built.
