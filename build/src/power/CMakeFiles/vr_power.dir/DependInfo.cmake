
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/analytical_model.cpp" "src/power/CMakeFiles/vr_power.dir/analytical_model.cpp.o" "gcc" "src/power/CMakeFiles/vr_power.dir/analytical_model.cpp.o.d"
  "/root/repo/src/power/resource_model.cpp" "src/power/CMakeFiles/vr_power.dir/resource_model.cpp.o" "gcc" "src/power/CMakeFiles/vr_power.dir/resource_model.cpp.o.d"
  "/root/repo/src/power/update_power.cpp" "src/power/CMakeFiles/vr_power.dir/update_power.cpp.o" "gcc" "src/power/CMakeFiles/vr_power.dir/update_power.cpp.o.d"
  "/root/repo/src/power/utilization.cpp" "src/power/CMakeFiles/vr_power.dir/utilization.cpp.o" "gcc" "src/power/CMakeFiles/vr_power.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/vr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/vr_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/vr_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
