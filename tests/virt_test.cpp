#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "netbase/table_gen.hpp"
#include "trie/trie_stats.hpp"
#include "virt/merged_trie.hpp"
#include "virt/overlap_model.hpp"
#include "virt/table_set_gen.hpp"

namespace vr::virt {
namespace {

using net::Ipv4;
using net::Prefix;
using net::RoutingTable;
using trie::UnibitTrie;

std::vector<UnibitTrie> build_tries(const std::vector<RoutingTable>& tables,
                                    bool leaf_push) {
  std::vector<UnibitTrie> tries;
  tries.reserve(tables.size());
  for (const auto& t : tables) {
    UnibitTrie trie(t);
    tries.push_back(leaf_push ? trie.leaf_pushed() : std::move(trie));
  }
  return tries;
}

MergedTrie merge(const std::vector<UnibitTrie>& tries) {
  std::vector<const UnibitTrie*> ptrs;
  ptrs.reserve(tries.size());
  for (const auto& t : tries) ptrs.push_back(&t);
  return MergedTrie(std::span<const UnibitTrie* const>(ptrs));
}

std::vector<RoutingTable> sample_tables(std::size_t k, std::size_t prefixes,
                                        std::uint64_t seed) {
  net::TableProfile profile;
  profile.prefix_count = prefixes;
  const net::SyntheticTableGenerator gen(profile);
  std::vector<RoutingTable> tables;
  for (std::size_t i = 0; i < k; ++i) {
    tables.push_back(gen.generate(seed + i));
  }
  return tables;
}

// ----------------------------------------------------------- basic merge --

TEST(MergedTrieTest, SingleInputIsIsomorphic) {
  const auto tables = sample_tables(1, 300, 1);
  const auto tries = build_tries(tables, false);
  const MergedTrie merged = merge(tries);
  EXPECT_EQ(merged.node_count(), tries[0].node_count());
  EXPECT_EQ(merged.height(), tries[0].height());
  EXPECT_EQ(merged.vn_count(), 1u);
  EXPECT_DOUBLE_EQ(merged.stats().alpha_effective(1), 1.0);
}

TEST(MergedTrieTest, IdenticalInputsFullyShare) {
  const auto tables = sample_tables(1, 300, 2);
  std::vector<RoutingTable> same{tables[0], tables[0], tables[0]};
  const auto tries = build_tries(same, false);
  const MergedTrie merged = merge(tries);
  EXPECT_EQ(merged.node_count(), tries[0].node_count());
  EXPECT_DOUBLE_EQ(merged.stats().alpha_effective(3), 1.0);
  EXPECT_DOUBLE_EQ(merged.stats().alpha_structural(), 1.0);
  EXPECT_EQ(merged.stats().shared_all, merged.node_count());
}

TEST(MergedTrieTest, DisjointInputsShareOnlyTopPaths) {
  RoutingTable a;
  a.add(*Prefix::parse("0.0.0.0/2"), 1);  // 00
  RoutingTable b;
  b.add(*Prefix::parse("192.0.0.0/2"), 2);  // 11
  const auto tries = build_tries({a, b}, false);
  const MergedTrie merged = merge(tries);
  // root shared; two disjoint 2-node paths.
  EXPECT_EQ(merged.node_count(), 5u);
  EXPECT_EQ(merged.stats().shared_any, 1u);  // only the root
  EXPECT_NEAR(merged.stats().alpha_effective(2), 0.2, 1e-12);
}

TEST(MergedTrieTest, LevelOffsetsConsistent) {
  const auto tables = sample_tables(4, 400, 3);
  const auto tries = build_tries(tables, true);
  const MergedTrie merged = merge(tries);
  const auto offsets = merged.level_offsets();
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), merged.node_count());
  std::size_t total = 0;
  for (std::size_t l = 0; l < merged.level_count(); ++l) {
    total += merged.level(l).size();
  }
  EXPECT_EQ(total, merged.node_count());
}

TEST(MergedTrieTest, ChildIndicesPointToNextLevel) {
  const auto tables = sample_tables(3, 300, 4);
  const auto tries = build_tries(tables, false);
  const MergedTrie merged = merge(tries);
  const auto offsets = merged.level_offsets();
  for (std::size_t l = 0; l + 1 < merged.level_count(); ++l) {
    for (std::size_t i = offsets[l]; i < offsets[l + 1]; ++i) {
      const MergedNode& node = merged.nodes()[i];
      for (const trie::NodeIndex child : {node.left, node.right}) {
        if (child == trie::kNullNode) continue;
        EXPECT_GE(child, offsets[l + 1]);
        EXPECT_LT(child, offsets[l + 2]);
      }
    }
  }
}

TEST(MergedTrieTest, MergedHeightIsMaxInputHeight) {
  const auto tables = sample_tables(3, 200, 5);
  const auto tries = build_tries(tables, false);
  unsigned max_height = 0;
  for (const auto& t : tries) max_height = std::max(max_height, t.height());
  EXPECT_EQ(merge(tries).height(), max_height);
}

TEST(MergedTrieTest, SumInputNodesRecorded) {
  const auto tables = sample_tables(2, 200, 6);
  const auto tries = build_tries(tables, false);
  const MergedTrie merged = merge(tries);
  EXPECT_EQ(merged.stats().sum_input_nodes,
            tries[0].node_count() + tries[1].node_count());
}

// -------------------------------------------- per-VN lookup correctness --

class MergedLookupProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MergedLookupProperty, LookupsMatchPerVnTries) {
  const auto tables = sample_tables(5, 400, GetParam());
  const auto tries = build_tries(tables, false);
  const MergedTrie merged = merge(tries);
  Rng rng(GetParam() ^ 0x777);
  for (int i = 0; i < 3000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    const auto vn = static_cast<net::VnId>(rng.next_below(5));
    EXPECT_EQ(merged.lookup(addr, vn), tries[vn].lookup(addr))
        << addr.to_string() << " vn " << vn;
  }
}

TEST_P(MergedLookupProperty, LeafPushedLookupsMatchToo) {
  const auto tables = sample_tables(4, 300, GetParam() + 50);
  const auto tries = build_tries(tables, true);
  const MergedTrie merged = merge(tries);
  Rng rng(GetParam() ^ 0x999);
  for (int i = 0; i < 3000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    const auto vn = static_cast<net::VnId>(rng.next_below(4));
    EXPECT_EQ(merged.lookup(addr, vn), tries[vn].lookup(addr));
  }
}

TEST_P(MergedLookupProperty, LookupsMatchTableOracle) {
  const auto tables = sample_tables(3, 250, GetParam() + 90);
  const auto tries = build_tries(tables, false);
  const MergedTrie merged = merge(tries);
  Rng rng(GetParam());
  for (int i = 0; i < 1500; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    const auto vn = static_cast<net::VnId>(rng.next_below(3));
    EXPECT_EQ(merged.lookup(addr, vn), tables[vn].lookup(addr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergedLookupProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------------ merged as trie --

TEST(MergedTrieTest, StatsAsTrieSumsMatch) {
  const auto tables = sample_tables(3, 300, 7);
  const auto tries = build_tries(tables, true);
  const MergedTrie merged = merge(tries);
  const trie::TrieStats stats = merged.stats_as_trie();
  EXPECT_EQ(stats.total_nodes, merged.node_count());
  EXPECT_EQ(stats.internal_nodes + stats.leaf_nodes, stats.total_nodes);
  EXPECT_EQ(stats.height, merged.height());
}

TEST(MergedTrieTest, LeafPushedInputsYieldFullMergedInternalNodes) {
  const auto tables = sample_tables(3, 300, 8);
  const auto tries = build_tries(tables, true);
  const MergedTrie merged = merge(tries);
  for (const MergedNode& node : merged.nodes()) {
    if (!node.is_leaf()) {
      // Merging full binary tries preserves two-children internal nodes.
      EXPECT_NE(node.left, trie::kNullNode);
      EXPECT_NE(node.right, trie::kNullNode);
    }
  }
}

// --------------------------------------------------------- overlap model --

TEST(OverlapModelTest, MergedNodeCountLimits) {
  EXPECT_DOUBLE_EQ(merged_node_count(4, 100.0, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(merged_node_count(4, 100.0, 0.0), 400.0);
  EXPECT_DOUBLE_EQ(merged_node_count(1, 100.0, 0.5), 100.0);
}

TEST(OverlapModelTest, MergedNodeCountMonotoneInAlpha) {
  double prev = merged_node_count(8, 1000.0, 0.0);
  for (double alpha = 0.1; alpha <= 1.0; alpha += 0.1) {
    const double t = merged_node_count(8, 1000.0, alpha);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(OverlapModelTest, AlphaFromCountsInvertsForward) {
  for (const double alpha : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const double t = merged_node_count(6, 500.0, alpha);
    EXPECT_NEAR(alpha_from_counts(6, 6 * 500.0, t), alpha, 1e-12);
  }
}

TEST(OverlapModelTest, AlphaFromCountsClamps) {
  EXPECT_DOUBLE_EQ(alpha_from_counts(4, 100.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(alpha_from_counts(4, 1000.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(alpha_from_counts(1, 100.0, 100.0), 1.0);
}

TEST(OverlapModelTest, MeasuredEffectiveAlphaAgreesWithFormula) {
  const auto tables = sample_tables(3, 300, 9);
  const auto tries = build_tries(tables, false);
  const MergedTrie merged = merge(tries);
  const double expected = alpha_from_counts(
      3, static_cast<double>(merged.stats().sum_input_nodes),
      static_cast<double>(merged.node_count()));
  EXPECT_NEAR(merged.stats().alpha_effective(3), expected, 1e-12);
}

class PredictMergedMemory : public ::testing::Test {
 protected:
  void SetUp() override {
    const net::SyntheticTableGenerator gen(
        net::TableProfile::edge_default());
    trie_ = std::make_unique<UnibitTrie>(
        UnibitTrie(gen.generate(1)).leaf_pushed());
    stats_ = trie::compute_stats(*trie_);
    mapping_ = std::make_unique<trie::StageMapping>(
        stats_.nodes_per_level.size(), 28,
        trie::MappingPolicy::kOneLevelPerStage);
  }

  std::unique_ptr<UnibitTrie> trie_;
  trie::TrieStats stats_;
  std::unique_ptr<trie::StageMapping> mapping_;
  trie::NodeEncoding enc_;
};

TEST_F(PredictMergedMemory, KOneEqualsSingleTrie) {
  const trie::StageMemory merged =
      predict_merged_stage_memory(stats_, *mapping_, enc_, 1, 1.0);
  const trie::StageMemory single =
      predict_separate_stage_memory(stats_, *mapping_, enc_);
  EXPECT_EQ(merged.total_pointer_bits(), single.total_pointer_bits());
  EXPECT_EQ(merged.total_nhi_bits(), single.total_nhi_bits());
}

TEST_F(PredictMergedMemory, PointerMemoryShrinksWithAlpha) {
  const auto lo = predict_merged_stage_memory(stats_, *mapping_, enc_, 8,
                                              0.2);
  const auto hi = predict_merged_stage_memory(stats_, *mapping_, enc_, 8,
                                              0.8);
  EXPECT_GT(lo.total_pointer_bits(), hi.total_pointer_bits());
  EXPECT_GT(lo.total_nhi_bits(), hi.total_nhi_bits());
}

TEST_F(PredictMergedMemory, FullOverlapBeatsSeparateOnPointers) {
  // α=1: merged pointer memory equals ONE table's; separate pays K×.
  const auto merged =
      predict_merged_stage_memory(stats_, *mapping_, enc_, 8, 1.0);
  const auto single = predict_separate_stage_memory(stats_, *mapping_, enc_);
  EXPECT_EQ(merged.total_pointer_bits(), single.total_pointer_bits());
  // NHI memory still grows (vector leaves) — Fig. 4 right.
  EXPECT_EQ(merged.total_nhi_bits(), 8 * single.total_nhi_bits());
}

TEST_F(PredictMergedMemory, PaperLiteralRuleGrowsWithAlpha) {
  const auto lo = predict_merged_stage_memory(
      stats_, *mapping_, enc_, 8, 0.2, MergedMemoryRule::kPaperLiteral);
  const auto hi = predict_merged_stage_memory(
      stats_, *mapping_, enc_, 8, 0.8, MergedMemoryRule::kPaperLiteral);
  // The literal Eq. 5 is dimensionally inconsistent with Fig. 4: memory
  // grows with α. This test pins the ablation behaviour.
  EXPECT_LT(lo.total_bits(), hi.total_bits());
}

TEST_F(PredictMergedMemory, AnalyticTracksStructuralMergeWithin15Percent) {
  // Build a real correlated set, measure α, and check the closed form
  // predicts the structural merged node count closely.
  TableSetConfig config;
  config.profile.prefix_count = 800;
  const CorrelatedTableSetGenerator gen(config);
  const TableSet set = gen.generate(6, 0.3, 42);
  const auto tries = build_tries(set.tables, true);
  const MergedTrie merged = merge(tries);
  const double alpha = merged.stats().alpha_effective(6);
  const double avg_nodes =
      static_cast<double>(merged.stats().sum_input_nodes) / 6.0;
  const double predicted = merged_node_count(6, avg_nodes, alpha);
  EXPECT_NEAR(predicted / static_cast<double>(merged.node_count()), 1.0,
              0.15);
}

// ----------------------------------------------------------- table sets --

TEST(TableSetGenTest, MutationZeroGivesIdenticalTables) {
  TableSetConfig config;
  config.profile.prefix_count = 400;
  const CorrelatedTableSetGenerator gen(config);
  const TableSet set = gen.generate(4, 0.0, 7);
  for (std::size_t v = 1; v < 4; ++v) {
    EXPECT_EQ(set.tables[v], set.tables[0]);
  }
  EXPECT_NEAR(set.measured_alpha, 1.0, 1e-9);
}

TEST(TableSetGenTest, MutationLowersAlphaMonotonically) {
  TableSetConfig config;
  config.profile.prefix_count = 500;
  const CorrelatedTableSetGenerator gen(config);
  double prev = 1.1;
  for (const double m : {0.0, 0.3, 0.7, 1.0}) {
    const TableSet set = gen.generate(4, m, 11);
    EXPECT_LT(set.measured_alpha, prev + 1e-9);
    prev = set.measured_alpha;
  }
}

TEST(TableSetGenTest, TablesKeepRequestedSize) {
  TableSetConfig config;
  config.profile.prefix_count = 500;
  const CorrelatedTableSetGenerator gen(config);
  const TableSet set = gen.generate(5, 0.5, 13);
  for (const auto& table : set.tables) {
    EXPECT_NEAR(static_cast<double>(table.size()), 500.0, 5.0);
  }
}

TEST(TableSetGenTest, GenerateWithAlphaHitsTargets) {
  TableSetConfig config;
  config.profile.prefix_count = 600;
  config.alpha_tolerance = 0.05;
  const CorrelatedTableSetGenerator gen(config);
  for (const double target : {0.2, 0.5, 0.8}) {
    const TableSet set = gen.generate_with_alpha(5, target, 17);
    EXPECT_NEAR(set.measured_alpha, target, 0.08)
        << "target " << target;
  }
}

TEST(TableSetGenTest, DeterministicForSeed) {
  TableSetConfig config;
  config.profile.prefix_count = 300;
  const CorrelatedTableSetGenerator gen(config);
  const TableSet a = gen.generate(3, 0.4, 23);
  const TableSet b = gen.generate(3, 0.4, 23);
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(a.tables[v], b.tables[v]);
  }
  EXPECT_DOUBLE_EQ(a.measured_alpha, b.measured_alpha);
}

TEST(TableSetGenTest, SingleVnShortCircuits) {
  TableSetConfig config;
  config.profile.prefix_count = 200;
  const CorrelatedTableSetGenerator gen(config);
  const TableSet set = gen.generate_with_alpha(1, 0.2, 29);
  EXPECT_EQ(set.tables.size(), 1u);
  EXPECT_DOUBLE_EQ(set.measured_alpha, 1.0);
}

}  // namespace
}  // namespace vr::virt
