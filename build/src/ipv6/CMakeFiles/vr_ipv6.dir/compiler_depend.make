# Empty compiler generated dependencies file for vr_ipv6.
# This may be replaced when dependencies are built.
