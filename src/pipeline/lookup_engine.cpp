#include "pipeline/lookup_engine.hpp"

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace vr::pipeline {

double ActivityCounters::mean_stage_utilization() const noexcept {
  if (cycles == 0 || stage_busy.empty()) return 0.0;
  double sum = 0.0;
  for (const std::uint64_t busy : stage_busy) {
    sum += static_cast<double>(busy) / static_cast<double>(cycles);
  }
  return sum / static_cast<double>(stage_busy.size());
}

double ActivityCounters::vn_utilization(std::size_t vn) const noexcept {
  const std::size_t stages = stage_busy.size();
  if (cycles == 0 || stages == 0 || vn >= vn_count) return 0.0;
  double sum = 0.0;
  for (std::size_t s = 0; s < stages; ++s) {
    sum += static_cast<double>(vn_stage_busy[vn * stages + s]) /
           static_cast<double>(cycles);
  }
  return sum / static_cast<double>(stages);
}

LookupEngine::LookupEngine(TrieView trie, std::size_t stage_count)
    : trie_(trie), slots_(stage_count) {
  VR_REQUIRE(stage_count >= 1, "engine needs at least one stage");
  if (trie_.level_count() > stage_count) {
    throw CapacityError("trie of " + std::to_string(trie_.level_count()) +
                        " levels does not fit a " +
                        std::to_string(stage_count) + "-stage engine");
  }
  // One trie level per stage means stage s inspects the address bits of
  // trie level s; a trie deeper than the address width (in levels of
  // `stride` bits each) would read past the last bit.
  if (trie_.level_count() > trie_.max_levels()) {
    throw CapacityError("trie of " + std::to_string(trie_.level_count()) +
                        " levels exceeds the " +
                        std::to_string(trie_.max_levels()) +
                        "-level depth a stride-" +
                        std::to_string(trie_.stride()) +
                        " lookup of a " + std::to_string(kAddressBits) +
                        "-bit address can have");
  }
  counters_.stage_busy.assign(stage_count, 0);
  counters_.stage_reads.assign(stage_count, 0);
  counters_.vn_count = trie_.vn_count();
  counters_.vn_stage_busy.assign(counters_.vn_count * stage_count, 0);
  counters_.vn_stage_reads.assign(counters_.vn_count * stage_count, 0);
}

bool LookupEngine::offer(const net::Packet& packet) {
  // Validate before looking at the input slot so malformed packets are
  // rejected even when the engine is busy.
  VR_REQUIRE(packet.vnid < trie_.vn_count(), "packet VNID out of range");
  if (input_.has_value()) {
    ++counters_.offers_rejected;
    return false;
  }
  input_ = packet;
  ++counters_.packets_in;
  return true;
}

void LookupEngine::tick(std::vector<LookupResult>* out) {
  VR_REQUIRE(out != nullptr, "tick needs an output sink");
  // Process stages back-to-front so each packet advances exactly one stage
  // per cycle.
  const std::size_t stages = slots_.size();
  // Stage `stages-1` completes this cycle.
  {
    Slot& last = slots_[stages - 1];
    if (last.valid) {
      // Perform the final stage's work first (it may still need its read).
      if (last.node != trie::kNullNode) {
        ++counters_.stage_reads[stages - 1];
        ++counters_.vn_stage_reads[last.packet.vnid * stages + stages - 1];
        const TrieView::Step step =
            trie_.step(last.node, last.packet.addr.value(), stages - 1,
                       last.packet.vnid);
        if (step.hop != net::kNoRoute) last.best = step.hop;
      }
      ++counters_.stage_busy[stages - 1];
      ++counters_.vn_stage_busy[last.packet.vnid * stages + stages - 1];
      LookupResult result;
      result.exit_cycle = counters_.cycles + 1;
      result.packet = last.packet;
      result.next_hop = last.best == net::kNoRoute
                            ? std::nullopt
                            : std::optional<net::NextHop>(last.best);
      out->push_back(result);
      ++counters_.packets_out;
      last.valid = false;
    }
  }
  for (std::size_t s = stages - 1; s-- > 0;) {
    Slot& slot = slots_[s];
    if (!slot.valid) continue;
    ++counters_.stage_busy[s];
    ++counters_.vn_stage_busy[slot.packet.vnid * stages + s];
    // Advance in place: do this stage's read/branch directly on the slot,
    // then move it forward (no full copy-then-overwrite per stage).
    if (slot.node != trie::kNullNode) {
      ++counters_.stage_reads[s];
      ++counters_.vn_stage_reads[slot.packet.vnid * stages + s];
      const TrieView::Step step = trie_.step(
          slot.node, slot.packet.addr.value(), s, slot.packet.vnid);
      if (step.hop != net::kNoRoute) slot.best = step.hop;
      slot.node = step.next;
    }
    slots_[s + 1] = std::move(slot);
    slot.valid = false;
  }
  if (input_.has_value()) {
    Slot& first = slots_[0];
    first.valid = true;
    first.packet = *input_;
    first.node = 0;  // root
    first.best = net::kNoRoute;
    input_.reset();
  }
  ++counters_.cycles;
}

bool LookupEngine::drained() const noexcept {
  if (input_.has_value()) return false;
  for (const Slot& slot : slots_) {
    if (slot.valid) return false;
  }
  return true;
}

}  // namespace vr::pipeline
