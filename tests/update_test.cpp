#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netbase/table_gen.hpp"
#include "netbase/update_gen.hpp"
#include "power/update_power.hpp"
#include "trie/updatable_trie.hpp"
#include "virt/merged_trie.hpp"
#include "virt/updatable_merged.hpp"

namespace vr {
namespace {

using net::Ipv4;
using net::Prefix;
using net::Route;
using net::RouteUpdate;
using net::RoutingTable;
using trie::UpdatableTrie;
using virt::UpdatableMergedTrie;

RoutingTable gen_table(std::uint64_t seed, std::size_t prefixes = 400) {
  net::TableProfile profile;
  profile.prefix_count = prefixes;
  return net::SyntheticTableGenerator(profile).generate(seed);
}

// ---------------------------------------------------------- UpdatableTrie --

TEST(UpdatableTrieTest, FreshBuildMatchesUnibitTrie) {
  const RoutingTable table = gen_table(1);
  const UpdatableTrie dynamic(table);
  const trie::UnibitTrie reference(table);
  EXPECT_EQ(dynamic.node_count(), reference.node_count());
  EXPECT_EQ(dynamic.route_count(), table.size());
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(dynamic.lookup(addr), reference.lookup(addr));
  }
}

TEST(UpdatableTrieTest, AnnounceCreatesPathOnce) {
  UpdatableTrie trie;
  const auto cost = trie.announce({*Prefix::parse("192.0.2.0/24"), 7});
  EXPECT_EQ(cost.nodes_created, 24u);
  EXPECT_EQ(cost.max_depth_touched, 24u);
  EXPECT_EQ(trie.node_count(), 25u);  // root + 24
  // Re-announcing the identical route writes nothing.
  const auto repeat = trie.announce({*Prefix::parse("192.0.2.0/24"), 7});
  EXPECT_EQ(repeat.nodes_created, 0u);
  EXPECT_EQ(repeat.words_written, 0u);
}

TEST(UpdatableTrieTest, PathChangeWritesOneWord) {
  UpdatableTrie trie;
  trie.announce({*Prefix::parse("10.0.0.0/8"), 1});
  const auto cost = trie.announce({*Prefix::parse("10.0.0.0/8"), 2});
  EXPECT_EQ(cost.nodes_created, 0u);
  EXPECT_EQ(cost.words_written, 1u);
  EXPECT_EQ(trie.lookup(Ipv4(10, 1, 1, 1)), 2);
  EXPECT_EQ(trie.route_count(), 1u);
}

TEST(UpdatableTrieTest, WithdrawPrunesDeadBranch) {
  UpdatableTrie trie;
  trie.announce({*Prefix::parse("10.0.0.0/8"), 1});
  trie.announce({*Prefix::parse("10.32.0.0/11"), 2});
  const std::size_t before = trie.node_count();
  const auto cost = trie.withdraw(*Prefix::parse("10.32.0.0/11"));
  EXPECT_EQ(cost.nodes_removed, 3u);  // depths 9..11 below the /8 node
  EXPECT_EQ(trie.node_count(), before - 3);
  EXPECT_EQ(trie.lookup(Ipv4(10, 32, 0, 1)), 1);  // /8 still covers
}

TEST(UpdatableTrieTest, WithdrawKeepsSharedPath) {
  UpdatableTrie trie;
  trie.announce({*Prefix::parse("10.0.0.0/8"), 1});
  trie.announce({*Prefix::parse("10.0.0.0/16"), 2});
  trie.withdraw(*Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(trie.node_count(), 9u);  // root + 8 (the /8 path)
  EXPECT_EQ(trie.lookup(Ipv4(10, 0, 5, 5)), 1);
}

TEST(UpdatableTrieTest, WithdrawMissingIsFreeNoOp) {
  UpdatableTrie trie;
  trie.announce({*Prefix::parse("10.0.0.0/8"), 1});
  const auto cost = trie.withdraw(*Prefix::parse("11.0.0.0/8"));
  EXPECT_EQ(cost.words_written, 0u);
  EXPECT_EQ(cost.nodes_removed, 0u);
  EXPECT_EQ(trie.route_count(), 1u);
}

TEST(UpdatableTrieTest, WithdrawInternalRouteKeepsChildren) {
  UpdatableTrie trie;
  trie.announce({*Prefix::parse("10.0.0.0/8"), 1});
  trie.announce({*Prefix::parse("10.1.0.0/16"), 2});
  trie.withdraw(*Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(trie.lookup(Ipv4(10, 1, 0, 1)), 2);
  EXPECT_EQ(trie.lookup(Ipv4(10, 2, 0, 1)), std::nullopt);
}

TEST(UpdatableTrieTest, FreedSlotsAreReused) {
  UpdatableTrie trie;
  trie.announce({*Prefix::parse("10.0.0.0/8"), 1});
  const std::size_t pool_after_first = trie.pool_size();
  trie.withdraw(*Prefix::parse("10.0.0.0/8"));
  trie.announce({*Prefix::parse("192.0.0.0/8"), 2});
  EXPECT_EQ(trie.pool_size(), pool_after_first);  // recycled, not grown
}

TEST(UpdatableTrieTest, SlashZeroRoute) {
  UpdatableTrie trie;
  trie.announce({*Prefix::parse("0.0.0.0/0"), 9});
  EXPECT_EQ(trie.node_count(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4(200, 1, 2, 3)), 9);
  trie.withdraw(*Prefix::parse("0.0.0.0/0"));
  EXPECT_EQ(trie.lookup(Ipv4(200, 1, 2, 3)), std::nullopt);
  EXPECT_EQ(trie.node_count(), 1u);  // root never pruned
}

TEST(UpdatableTrieTest, NodesPerDepthTracksLiveNodes) {
  const RoutingTable table = gen_table(2);
  UpdatableTrie trie(table);
  std::size_t total = 0;
  for (const std::size_t n : trie.nodes_per_depth()) total += n;
  EXPECT_EQ(total, trie.node_count());
}

TEST(UpdatableTrieTest, ToTableRoundTrips) {
  const RoutingTable table = gen_table(3);
  UpdatableTrie trie(table);
  EXPECT_EQ(trie.to_table(), table);
}

class UpdateStreamProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(UpdateStreamProperty, TrieTracksOracleThroughStream) {
  const RoutingTable base = gen_table(GetParam(), 300);
  net::UpdateStreamConfig config;
  config.update_count = 400;
  config.profile.prefix_count = 300;
  const net::UpdateStreamGenerator gen(config);
  const auto stream = gen.generate(base, GetParam() ^ 0xbeef);

  UpdatableTrie trie(base);
  RoutingTable oracle = base;
  Rng rng(GetParam());
  for (const RouteUpdate& update : stream) {
    trie.apply(update);
    if (update.kind == RouteUpdate::Kind::kAnnounce) {
      oracle.add(update.route);
    } else {
      oracle.remove(update.route.prefix);
    }
    // Spot-check lookups as the stream progresses.
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(trie.lookup(addr), oracle.lookup(addr));
  }
  EXPECT_EQ(trie.to_table(), oracle);
  EXPECT_EQ(trie.route_count(), oracle.size());
  // The incrementally maintained trie is structurally identical to a
  // fresh build of the final table.
  EXPECT_EQ(trie.node_count(), trie::UnibitTrie(oracle).node_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateStreamProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// -------------------------------------------------------- update streams --

TEST(UpdateStreamGenTest, DeterministicAndSized) {
  const RoutingTable base = gen_table(7, 200);
  net::UpdateStreamConfig config;
  config.update_count = 250;
  config.profile.prefix_count = 200;
  const net::UpdateStreamGenerator gen(config);
  const auto a = gen.generate(base, 1);
  const auto b = gen.generate(base, 1);
  EXPECT_EQ(a.size(), 250u);
  EXPECT_EQ(a, b);
}

TEST(UpdateStreamGenTest, WithdrawsAlwaysTargetInstalledRoutes) {
  const RoutingTable base = gen_table(8, 200);
  net::UpdateStreamConfig config;
  config.update_count = 300;
  config.profile.prefix_count = 200;
  const net::UpdateStreamGenerator gen(config);
  RoutingTable live = base;
  for (const RouteUpdate& update : gen.generate(base, 2)) {
    if (update.kind == RouteUpdate::Kind::kWithdraw) {
      EXPECT_TRUE(live.contains(update.route.prefix));
      live.remove(update.route.prefix);
    } else {
      live.add(update.route);
    }
  }
}

TEST(UpdateStreamGenTest, MixFollowsWeights) {
  const RoutingTable base = gen_table(9, 300);
  net::UpdateStreamConfig config;
  config.update_count = 2000;
  config.withdraw_weight = 0.0;
  config.announce_new_weight = 0.0;
  config.reannounce_weight = 1.0;
  config.profile.prefix_count = 300;
  const net::UpdateStreamGenerator gen(config);
  for (const RouteUpdate& update : gen.generate(base, 3)) {
    EXPECT_EQ(update.kind, RouteUpdate::Kind::kAnnounce);
    EXPECT_TRUE(base.contains(update.route.prefix) ||
                true);  // re-announces may chain; kind check is the point
  }
}

// --------------------------------------------------- UpdatableMergedTrie --

class MergedUpdateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t v = 0; v < kVns; ++v) {
      tables_.push_back(gen_table(20 + v, 250));
    }
    for (const auto& t : tables_) ptrs_.push_back(&t);
  }

  static constexpr std::size_t kVns = 4;
  std::vector<RoutingTable> tables_;
  std::vector<const RoutingTable*> ptrs_;
};

TEST_F(MergedUpdateFixture, FreshBuildMatchesStaticMerge) {
  const UpdatableMergedTrie dynamic{
      std::span<const RoutingTable* const>(ptrs_)};
  std::vector<trie::UnibitTrie> tries;
  for (const auto& t : tables_) tries.emplace_back(t);
  std::vector<const trie::UnibitTrie*> trie_ptrs;
  for (const auto& t : tries) trie_ptrs.push_back(&t);
  const virt::MergedTrie static_merge{
      std::span<const trie::UnibitTrie* const>(trie_ptrs)};
  EXPECT_EQ(dynamic.node_count(), static_merge.node_count());
  EXPECT_NEAR(dynamic.alpha_effective(),
              static_merge.stats().alpha_effective(kVns), 1e-12);
  for (net::VnId v = 0; v < kVns; ++v) {
    EXPECT_EQ(dynamic.present_count(v), tries[v].node_count());
  }
}

TEST_F(MergedUpdateFixture, LookupsMatchTables) {
  const UpdatableMergedTrie merged{
      std::span<const RoutingTable* const>(ptrs_)};
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    const auto vn = static_cast<net::VnId>(rng.next_below(kVns));
    EXPECT_EQ(merged.lookup(addr, vn), tables_[vn].lookup(addr));
  }
}

TEST_F(MergedUpdateFixture, PerVnStreamsTrackOracles) {
  UpdatableMergedTrie merged{std::span<const RoutingTable* const>(ptrs_)};
  std::vector<RoutingTable> oracles = tables_;
  net::UpdateStreamConfig config;
  config.update_count = 200;
  config.profile.prefix_count = 250;
  const net::UpdateStreamGenerator gen(config);
  Rng rng(6);
  for (net::VnId v = 0; v < kVns; ++v) {
    for (const RouteUpdate& update : gen.generate(oracles[v], 100 + v)) {
      merged.apply(v, update);
      if (update.kind == RouteUpdate::Kind::kAnnounce) {
        oracles[v].add(update.route);
      } else {
        oracles[v].remove(update.route.prefix);
      }
    }
  }
  for (net::VnId v = 0; v < kVns; ++v) {
    EXPECT_EQ(merged.table_of(v), oracles[v]) << "vn " << v;
    EXPECT_EQ(merged.route_count(v), oracles[v].size());
    for (int i = 0; i < 500; ++i) {
      const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
      EXPECT_EQ(merged.lookup(addr, v), oracles[v].lookup(addr));
    }
  }
  // Structure equals a fresh static merge of the final tables.
  std::vector<trie::UnibitTrie> tries;
  for (const auto& t : oracles) tries.emplace_back(t);
  std::vector<const trie::UnibitTrie*> trie_ptrs;
  for (const auto& t : tries) trie_ptrs.push_back(&t);
  const virt::MergedTrie rebuilt{
      std::span<const trie::UnibitTrie* const>(trie_ptrs)};
  EXPECT_EQ(merged.node_count(), rebuilt.node_count());
  EXPECT_NEAR(merged.alpha_effective(),
              rebuilt.stats().alpha_effective(kVns), 1e-12);
}

TEST_F(MergedUpdateFixture, WithdrawingSharedNodeKeepsOtherVns) {
  UpdatableMergedTrie merged{std::span<const RoutingTable* const>(ptrs_)};
  // Install the same prefix for two VNs, withdraw it from one.
  const Route route{*Prefix::parse("203.0.0.0/24"), 5};
  merged.announce(0, route);
  merged.announce(1, route);
  merged.withdraw(0, route.prefix);
  EXPECT_EQ(merged.lookup(Ipv4(203, 0, 0, 9), 0),
            tables_[0].lookup(Ipv4(203, 0, 0, 9)));
  EXPECT_EQ(merged.lookup(Ipv4(203, 0, 0, 9), 1), 5);
}

TEST_F(MergedUpdateFixture, SharedLeafVectorWritesCostOneWord) {
  UpdatableMergedTrie merged{std::span<const RoutingTable* const>(ptrs_)};
  const Route route{*Prefix::parse("198.51.100.0/24"), 3};
  const auto first = merged.announce(0, route);
  EXPECT_GT(first.nodes_created, 0u);
  // Second VN re-uses the whole path: one NHI-vector entry write only.
  const auto second = merged.announce(1, route);
  EXPECT_EQ(second.nodes_created, 0u);
  EXPECT_EQ(second.words_written, 1u);
}

TEST(UpdatableMergedTrieTest, RejectsTooManyVns) {
  std::vector<const RoutingTable*> many(65, nullptr);
  EXPECT_DEATH(UpdatableMergedTrie{std::span<const RoutingTable* const>(
                   many)},
               "1..64");
}

// ----------------------------------------------------- update power model --

TEST(UpdatePowerTest, BaselineRateIsNeutral) {
  EXPECT_DOUBLE_EQ(
      power::adjusted_bram_power_w(units::Watts{2.0}, 0.01).value(), 2.0);
}

TEST(UpdatePowerTest, PowerRisesWithWriteRate) {
  const double base =
      power::adjusted_bram_power_w(units::Watts{2.0}, 0.01).value();
  const double busy =
      power::adjusted_bram_power_w(units::Watts{2.0}, 0.5).value();
  EXPECT_GT(busy, base);
  EXPECT_NEAR(busy, 2.0 * (1.0 + 0.30 * 0.49), 1e-12);
}

TEST(UpdatePowerTest, SlotStealingReducesCapacity) {
  power::UpdateLoad load;
  load.updates_per_second = 1e6;
  load.words_per_update = 40.0;
  // 40e6 writes/s at 400 MHz = 10 % of slots.
  EXPECT_NEAR(load.write_slot_fraction(units::Megahertz{400.0}), 0.1, 1e-12);
  EXPECT_NEAR(
      power::effective_lookup_gbps(units::Megahertz{400.0}, load).value(),
      0.9 * 128.0, 1e-9);
}

TEST(UpdatePowerTest, MeasuredLoadMatchesManualReplay) {
  const RoutingTable base = gen_table(11, 200);
  net::UpdateStreamConfig config;
  config.update_count = 100;
  config.profile.prefix_count = 200;
  const net::UpdateStreamGenerator gen(config);
  const auto stream = gen.generate(base, 4);
  const power::UpdateLoad load =
      power::measure_update_load(base, stream, 1000.0);
  UpdatableTrie trie(base);
  const auto total = trie::apply_all(trie, stream);
  EXPECT_NEAR(load.words_per_update,
              static_cast<double>(total.words_written) / 100.0, 1e-12);
  EXPECT_GT(load.words_per_update, 0.0);
}

}  // namespace
}  // namespace vr
