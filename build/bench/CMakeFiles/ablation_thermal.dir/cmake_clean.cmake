file(REMOVE_RECURSE
  "CMakeFiles/ablation_thermal.dir/ablation_thermal.cpp.o"
  "CMakeFiles/ablation_thermal.dir/ablation_thermal.cpp.o.d"
  "ablation_thermal"
  "ablation_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
